// Command migsim runs live-migration scenarios. In single-VM mode (the
// default) one VM runs a chosen workload and storage transfer approach and
// is migrated after a warm-up, with a full measurement summary. With -vms N
// (N > 1) it runs a campaign: a fleet of N VMs migrates together under an
// orchestration policy, and the campaign aggregates are reported.
//
// Usage:
//
//	migsim [-approach our-approach|mirror|postcopy|precopy|pvfs-shared]
//	       [-workload ior|asyncwr|none] [-scale small|paper] [-warmup s]
//	       [-vms n] [-policy all-at-once|serial|batched-k|cycle-aware] [-k n]
package main

import (
	"flag"
	"fmt"
	"os"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/flow"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/workload"
)

func main() {
	approachName := flag.String("approach", "our-approach", "storage transfer approach")
	workloadName := flag.String("workload", "ior", "guest workload: ior, asyncwr, none")
	scaleName := flag.String("scale", "small", "small or paper")
	warmup := flag.Float64("warmup", -1, "seconds before the migration (default: scale's warm-up)")
	vms := flag.Int("vms", 1, "number of VMs; > 1 runs an orchestrated campaign")
	policyName := flag.String("policy", "batched-k", "campaign policy: all-at-once, serial, batched-k, cycle-aware")
	batchK := flag.Int("k", 2, "admission width for the batched-k and cycle-aware policies")
	flag.Parse()

	var approach hybridmig.Approach
	for _, a := range hybridmig.Approaches() {
		if string(a) == *approachName {
			approach = a
		}
	}
	if approach == "" {
		fmt.Fprintf(os.Stderr, "migsim: unknown approach %q\n", *approachName)
		os.Exit(2)
	}
	scale := experiments.ScaleSmall
	if *scaleName == "paper" {
		scale = experiments.ScalePaper
	}
	if *vms > 1 {
		var pol hybridmig.Policy
		switch *policyName {
		case "all-at-once":
			pol = hybridmig.AllAtOnce()
		case "serial":
			pol = hybridmig.Serial()
		case "batched-k":
			pol = hybridmig.BatchedK(*batchK)
		case "cycle-aware":
			pol = hybridmig.CycleAware(*batchK)
		default:
			fmt.Fprintf(os.Stderr, "migsim: unknown policy %q\n", *policyName)
			os.Exit(2)
		}
		runCampaign(scale, approach, *workloadName, *warmup, *vms, pol)
		return
	}
	runSingle(scale, approach, *workloadName, *warmup)
}

// runCampaign migrates a fleet of n VMs together under the policy, packing
// two migrations per destination node as in the campaign experiment.
func runCampaign(scale experiments.Scale, approach hybridmig.Approach, workloadName string, warmup float64, n int, pol hybridmig.Policy) {
	set := experiments.NewSetup(scale, n+(n+1)/2)
	if warmup >= 0 {
		set.Warmup = warmup
	}
	tb := hybridmig.NewTestbed(set.Cluster)
	reqs := make([]hybridmig.MigrationRequest, n)
	for i := 0; i < n; i++ {
		i := i
		inst := tb.Launch(fmt.Sprintf("vm%02d", i), i, approach)
		switch workloadName {
		case "ior":
			inst.Guest.Buffered = false
			w := workload.NewIOR(set.IOR)
			tb.Eng.Go(fmt.Sprintf("ior%02d", i), func(p *sim.Proc) { w.Run(p, inst.Guest) })
		case "asyncwr":
			w := workload.NewAsyncWR(set.AsyncWR)
			tb.Eng.Go(fmt.Sprintf("asyncwr%02d", i), func(p *sim.Proc) { w.Run(p, inst.Guest) })
		case "none":
		default:
			fmt.Fprintf(os.Stderr, "migsim: unknown workload %q\n", workloadName)
			os.Exit(2)
		}
		reqs[i] = hybridmig.MigrationRequest{Inst: inst, DstIdx: n + i/2}
	}
	var c *hybridmig.Campaign
	tb.Eng.Go("orchestrator", func(p *sim.Proc) {
		p.Sleep(set.Warmup)
		c = tb.MigrateAll(p, reqs, pol)
	})
	hybridmig.Run(tb)

	fmt.Printf("approach:  %s\n", approach)
	fmt.Printf("workload:  %s (%s scale), %d VMs, policy %s\n\n", workloadName, scale, n, pol.Name())
	fmt.Println(c.Summary())
	if len(c.Traffic) > 0 {
		fmt.Println("traffic during campaign:")
		for _, tbytes := range c.Traffic {
			fmt.Printf("  %-8s %8.1f MB\n", tbytes.Tag, tbytes.Bytes/(1<<20))
		}
	}
}

// runSingle is the original one-VM scenario.
func runSingle(scale experiments.Scale, approach hybridmig.Approach, workloadName string, warmup float64) {
	set := experiments.NewSetup(scale, 10)
	if warmup >= 0 {
		set.Warmup = warmup
	}

	tb := hybridmig.NewTestbed(set.Cluster)
	inst := tb.Launch("vm0", 0, approach)

	var ior *workload.IOR
	var awr *workload.AsyncWR
	switch workloadName {
	case "ior":
		inst.Guest.Buffered = false
		ior = workload.NewIOR(set.IOR)
		tb.Eng.Go("ior", func(p *sim.Proc) { ior.Run(p, inst.Guest) })
	case "asyncwr":
		awr = workload.NewAsyncWR(set.AsyncWR)
		tb.Eng.Go("asyncwr", func(p *sim.Proc) { awr.Run(p, inst.Guest) })
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "migsim: unknown workload %q\n", workloadName)
		os.Exit(2)
	}

	tb.Eng.Go("middleware", func(p *sim.Proc) {
		p.Sleep(set.Warmup)
		tb.MigrateInstance(p, inst, 1)
	})
	hybridmig.Run(tb)

	fmt.Printf("approach:        %s\n", approach)
	fmt.Printf("workload:        %s (%s scale)\n", workloadName, scale)
	fmt.Printf("migration time:  %.2f s\n", inst.MigrationTime)
	fmt.Printf("downtime:        %.0f ms\n", inst.HVResult.Downtime*1000)
	fmt.Printf("memory moved:    %.1f MB in %d rounds (converged=%v)\n",
		inst.HVResult.MemoryBytes/(1<<20), inst.HVResult.Rounds, inst.HVResult.Converged)
	if inst.HVResult.BlockBytes > 0 {
		fmt.Printf("block migration: %.1f MB\n", inst.HVResult.BlockBytes/(1<<20))
	}
	if inst.Core != nil {
		st := inst.CoreStats
		fmt.Printf("pushed:          %d chunks (%.1f MB)\n", st.PushedChunks, st.PushedBytes/(1<<20))
		fmt.Printf("pulled:          %d background + %d on-demand (%.1f MB)\n",
			st.PulledChunks, st.OnDemandPulls, (st.PulledBytes+st.OnDemandBytes)/(1<<20))
		fmt.Printf("hot (deferred):  %d chunks\n", st.SkippedHot)
		fmt.Printf("base prefetch:   %.1f MB\n", st.PrefetchBytes/(1<<20))
	}
	net := tb.Cl.Net
	fmt.Printf("network traffic: memory %.1f MB, push %.1f MB, pull %.1f MB, blockmig %.1f MB, mirror %.1f MB, repo %.1f MB, pfs %.1f MB\n",
		net.BytesByTag(flow.TagMemory)/(1<<20),
		net.BytesByTag(flow.TagStoragePush)/(1<<20),
		net.BytesByTag(flow.TagStoragePull)/(1<<20),
		net.BytesByTag(flow.TagBlockMig)/(1<<20),
		net.BytesByTag(flow.TagMirror)/(1<<20),
		net.BytesByTag(flow.TagRepo)/(1<<20),
		net.BytesByTag(flow.TagPFS)/(1<<20))
	if ior != nil {
		fmt.Printf("IOR:             read %.1f MB/s, write %.1f MB/s over %d iterations\n",
			ior.Report.ReadBW()/(1<<20), ior.Report.WriteBW()/(1<<20), ior.Report.Iterations)
	}
	if awr != nil {
		fmt.Printf("AsyncWR:         %d iterations, %.2f MB/s sustained\n",
			awr.Report.Counter, awr.Report.WriteBW()/(1<<20))
	}
}
