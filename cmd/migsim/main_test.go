package main

import (
	"errors"
	"strings"
	"testing"
)

// TestParsePartition pins the strict node:start:duration grammar: every
// malformed spec is a named error carrying the expected grammar, never a
// zero value that would silently alter the run.
func TestParsePartition(t *testing.T) {
	bad := []struct {
		name string
		in   string
	}{
		{"too few fields", "1:8.2"},
		{"too many fields", "1:8.2:8:9"},
		{"empty", ""},
		{"non-integer node", "x:1:2"},
		{"float node", "1.5:1:2"},
		{"negative node", "-1:1:2"},
		{"non-numeric start", "1:later:2"},
		{"negative start", "1:-2:3"},
		{"zero duration", "1:2:0"},
		{"negative duration", "1:2:-3"},
		{"trailing junk on duration", "1:2:3junk"},
		{"trailing junk on node", "1junk:2:3"},
	}
	for _, c := range bad {
		_, _, _, err := parsePartition(c.in)
		if err == nil {
			t.Errorf("%s (%q): accepted", c.name, c.in)
			continue
		}
		if !errors.Is(err, errFlagSyntax) {
			t.Errorf("%s: error %v does not wrap errFlagSyntax", c.name, err)
		}
		if !strings.Contains(err.Error(), "node:start:duration") {
			t.Errorf("%s: error %q does not state the grammar", c.name, err)
		}
	}

	node, at, dur, err := parsePartition("1:8.2:8")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if node != 1 || at != 8.2 || dur != 8 {
		t.Fatalf("parsed %d:%g:%g, want 1:8.2:8", node, at, dur)
	}
}

// TestDegradedFlagsValidate covers each fault/traffic flag's error path.
func TestDegradedFlagsValidate(t *testing.T) {
	// ok returns a baseline that passes validation; each case breaks one flag.
	ok := func() degradedFlags {
		return degradedFlags{retries: 3, retryBackoff: 1, degradeDur: 10, degradeFactor: 0.25, bgStop: 60}
	}
	cases := []struct {
		name string
		df   degradedFlags
		want string // substring naming the offending flag
	}{
		{"negative crash-at", func() degradedFlags { d := ok(); d.crashAt = -1; return d }(), "-crash-at"},
		{"negative retries", func() degradedFlags { d := ok(); d.retries = -2; return d }(), "-retries"},
		{"negative retry-backoff", func() degradedFlags { d := ok(); d.retryBackoff = -1; return d }(), "-retry-backoff"},
		{"negative degrade-at", func() degradedFlags { d := ok(); d.degradeAt = -3; return d }(), "-degrade-at"},
		{"zero degrade-dur", func() degradedFlags { d := ok(); d.degradeAt = 5; d.degradeDur = 0; return d }(), "-degrade-dur"},
		{"negative degrade-dur", func() degradedFlags { d := ok(); d.degradeAt = 5; d.degradeDur = -1; return d }(), "-degrade-dur"},
		{"factor above 1", func() degradedFlags { d := ok(); d.degradeAt = 5; d.degradeFactor = 1.5; return d }(), "-degrade-factor"},
		{"negative factor", func() degradedFlags { d := ok(); d.degradeAt = 5; d.degradeFactor = -0.1; return d }(), "-degrade-factor"},
		{"negative bg-rate", func() degradedFlags { d := ok(); d.bgRate = -5; return d }(), "-bg-rate"},
		{"bg-rate without window", func() degradedFlags { d := ok(); d.bgRate = 10; d.bgStop = 0; return d }(), "-bg-stop"},
	}
	for _, c := range cases {
		err := c.df.validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, errFlagSyntax) {
			t.Errorf("%s: error %v does not wrap errFlagSyntax", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %s", c.name, err, c.want)
		}
	}

	if err := ok().validate(); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}
	// The degrade/traffic knobs are ignored while disabled: garbage in the
	// dependent fields must not fail validation when the feature is off.
	d := ok()
	d.degradeDur, d.degradeFactor, d.bgStop = 0, 9, 0
	if err := d.validate(); err != nil {
		t.Fatalf("disabled features validated their dependent flags: %v", err)
	}
}
