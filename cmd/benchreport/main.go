// Command benchreport runs the repository's performance suite and emits a
// machine-readable BENCH.json: micro-benchmarks of the two hot layers (the
// internal/flow incremental allocator and the internal/sim event kernel)
// plus wall-clock measurements of the heavyweight experiment drivers. CI
// uploads the file as an artifact and EXPERIMENTS.md records the paper-scale
// trajectory, so future PRs can detect perf regressions by diffing reports.
//
// Usage:
//
//	benchreport [-scale small|paper] [-skip-experiments] [-parallel N] [-o BENCH.json]
//	benchreport -compare old.json new.json [-threshold 0.30]
//
// With -parallel != 0 the experiment drivers are timed twice — once serial,
// once with N concurrent cells (-1 = GOMAXPROCS) — and a 10,000-VM campaign
// smoke runs through the component-parallel scenario kernel, so BENCH.json
// records the serial-vs-parallel trajectory side by side.
//
// -compare turns two BENCH.json snapshots into a trajectory: a field-wise
// delta report over the micro and experiment series, exiting nonzero when any
// series regressed past the threshold (fractional; 0.30 = 30% slower) or when
// a zero-alloc series started allocating. -cpuprofile/-memprofile write pprof
// profiles of the measurement run for drill-down.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/benchscen"
	"github.com/hybridmig/hybridmig/internal/experiments"
)

// Micro is one micro-benchmark result.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Experiment is one experiment driver wall-clock measurement.
type Experiment struct {
	Name        string  `json:"name"`
	Scale       string  `json:"scale"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is the BENCH.json shape.
type Report struct {
	Schema      int          `json:"schema"`
	Go          string       `json:"go"`
	Micro       []Micro      `json:"micro"`
	Experiments []Experiment `json:"experiments,omitempty"`
}

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	skipExp := flag.Bool("skip-experiments", false, "only run micro-benchmarks")
	parallel := flag.Int("parallel", -1, "workers for the parallel experiment legs (-1 = GOMAXPROCS, 0 = serial legs only)")
	out := flag.String("o", "BENCH.json", "output path")
	compare := flag.Bool("compare", false, "compare two BENCH.json files (old new) instead of measuring")
	threshold := flag.Float64("threshold", 0.30, "with -compare: fractional slowdown that counts as a regression")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measurement run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchreport: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *threshold))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			}
		}()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "benchreport: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	rep := Report{Schema: 1, Go: runtime.Version()}
	micro := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		m := Micro{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Micro = append(rep.Micro, m)
		fmt.Printf("%-36s %12.1f ns/op %8d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}

	// The scenario bodies are shared with the package benchmarks via
	// internal/benchscen, so this report measures exactly what
	// `go test -bench` measures.
	for _, n := range []int{10, 100, 1000} {
		n := n
		micro(fmt.Sprintf("flow/churn-disjoint-%d", n), func(b *testing.B) { benchscen.FlowChurn(b, n, false) })
	}
	for _, n := range []int{10, 100, 1000} {
		n := n
		micro(fmt.Sprintf("flow/churn-shared-%d", n), func(b *testing.B) { benchscen.FlowChurn(b, n, true) })
	}
	micro("sim/after-fire", benchscen.AfterFire)
	micro("sim/timer-churn", benchscen.TimerChurn)
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		micro(fmt.Sprintf("sim/parallel-components-%d", shards),
			func(b *testing.B) { benchscen.ParallelComponents(b, shards) })
	}

	if !*skipExp {
		experiment := func(name string, run func()) {
			runtime.GC() // each leg starts from a settled heap
			start := time.Now()
			run()
			e := Experiment{Name: name, Scale: scale.String(), WallSeconds: time.Since(start).Seconds()}
			rep.Experiments = append(rep.Experiments, e)
			fmt.Printf("%-36s %12.1f s wall\n", name+"@"+e.Scale, e.WallSeconds)
		}
		experiment("fig4-concurrent-migrations", func() { experiments.RunFig4(scale) })
		experiment("fig5-storage-migrations", func() { experiments.RunFig5(scale) })
		experiment("campaign-all-policies", func() { experiments.RunCampaign(scale) })
		if *parallel != 0 {
			// Same drivers with concurrent cells; results are byte-identical,
			// only the wall clock moves (by the core count of this machine).
			experiments.SetParallel(*parallel)
			experiment("fig4-concurrent-migrations-parallel", func() { experiments.RunFig4(scale) })
			experiment("fig5-storage-migrations-parallel", func() { experiments.RunFig5(scale) })
			experiment("campaign-all-policies-parallel", func() { experiments.RunCampaign(scale) })
			experiments.SetParallel(0)
		}
		experiment("campaign-10k-vm-smoke", func() { tenKCampaignSmoke(*parallel) })
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// loadReport reads one BENCH.json snapshot.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports prints a field-wise delta between two BENCH.json snapshots
// and returns the process exit code: 0 when no series regressed past the
// threshold, 1 otherwise. Series present in only one file are reported but
// never count as regressions (the suite grows over time).
func compareReports(oldPath, newPath string, threshold float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 2
	}

	regressions := 0
	// delta reports one numeric field; worse-by-more-than-threshold flags it.
	delta := func(name, field string, old, new float64, unit string) {
		rel := 0.0
		if old > 0 {
			rel = (new - old) / old
		}
		mark := " "
		if old > 0 && rel > threshold {
			mark = "!"
			regressions++
		}
		fmt.Printf("%s %-38s %-10s %14.1f -> %14.1f %-6s %+7.1f%%\n",
			mark, name, field, old, new, unit, rel*100)
	}

	oldMicro := make(map[string]Micro, len(oldRep.Micro))
	for _, m := range oldRep.Micro {
		oldMicro[m.Name] = m
	}
	for _, m := range newRep.Micro {
		o, ok := oldMicro[m.Name]
		if !ok {
			fmt.Printf("+ %-38s new series: %.1f ns/op, %d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
			continue
		}
		delete(oldMicro, m.Name)
		delta(m.Name, "ns/op", o.NsPerOp, m.NsPerOp, "ns")
		if m.AllocsPerOp > o.AllocsPerOp {
			// Allocation regressions are exact, not thresholded: a pooled
			// path that starts allocating is a bug regardless of magnitude.
			fmt.Printf("! %-38s allocs/op  %14d -> %14d\n", m.Name, o.AllocsPerOp, m.AllocsPerOp)
			regressions++
		}
	}
	for name := range oldMicro {
		fmt.Printf("- %-38s series dropped\n", name)
	}

	oldExp := make(map[string]Experiment, len(oldRep.Experiments))
	for _, e := range oldRep.Experiments {
		oldExp[e.Name+"@"+e.Scale] = e
	}
	for _, e := range newRep.Experiments {
		key := e.Name + "@" + e.Scale
		o, ok := oldExp[key]
		if !ok {
			fmt.Printf("+ %-38s new series: %.1f s wall\n", key, e.WallSeconds)
			continue
		}
		delete(oldExp, key)
		delta(key, "wall", o.WallSeconds, e.WallSeconds, "s")
	}
	for key := range oldExp {
		fmt.Printf("- %-38s series dropped\n", key)
	}

	if regressions > 0 {
		fmt.Printf("benchreport: %d series regressed past %+.0f%%\n", regressions, threshold*100)
		return 1
	}
	fmt.Println("benchreport: no regressions")
	return 0
}

// tenKCampaignSmoke migrates 10,000 preseeded idle VMs across 5,000 disjoint
// node pairs in one staggered wave at paper fidelity — the ROADMAP scale
// target for policy studies. The switch fabric is widened past the planner's
// transparency bound so the scenario decomposes into 5,000 independent
// shards; workers selects the kernel (0 = serial fallback for a baseline).
func tenKCampaignSmoke(workers int) {
	const pairs = 5000
	nodes := 2 * pairs
	set := hybridmig.SetupFor(hybridmig.ScalePaper, nodes)
	set.Cluster.Testbed.FabricBandwidth = 2 * float64(nodes) * set.Cluster.Testbed.NICBandwidth
	opts := []hybridmig.Option{
		hybridmig.WithConfig(set.Cluster),
		hybridmig.WithPreseededImages(),
	}
	if workers != 0 {
		opts = append(opts, hybridmig.WithParallel(workers))
	}
	s := hybridmig.NewScenario(opts...)
	warmup := set.Cluster.Experiment.WarmupDelay
	for p := 0; p < pairs; p++ {
		src, dst := 2*p, 2*p+1
		for v := 0; v < 2; v++ {
			name := fmt.Sprintf("vm%d-%d", p, v)
			s.AddVM(hybridmig.VMSpec{Name: name, Node: src, Approach: hybridmig.OurApproach})
			s.MigrateAt(name, dst, warmup+float64(p%50)+float64(v))
		}
	}
	if _, err := s.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: 10k campaign smoke: %v\n", err)
		os.Exit(1)
	}
}
