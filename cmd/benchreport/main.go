// Command benchreport runs the repository's performance suite and emits a
// machine-readable BENCH.json: micro-benchmarks of the two hot layers (the
// internal/flow incremental allocator and the internal/sim event kernel)
// plus wall-clock measurements of the heavyweight experiment drivers. CI
// uploads the file as an artifact and EXPERIMENTS.md records the paper-scale
// trajectory, so future PRs can detect perf regressions by diffing reports.
//
// Usage:
//
//	benchreport [-scale small|paper] [-skip-experiments] [-o BENCH.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/hybridmig/hybridmig/internal/benchscen"
	"github.com/hybridmig/hybridmig/internal/experiments"
)

// Micro is one micro-benchmark result.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Experiment is one experiment driver wall-clock measurement.
type Experiment struct {
	Name        string  `json:"name"`
	Scale       string  `json:"scale"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is the BENCH.json shape.
type Report struct {
	Schema      int          `json:"schema"`
	Go          string       `json:"go"`
	Micro       []Micro      `json:"micro"`
	Experiments []Experiment `json:"experiments,omitempty"`
}

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small or paper")
	skipExp := flag.Bool("skip-experiments", false, "only run micro-benchmarks")
	out := flag.String("o", "BENCH.json", "output path")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "benchreport: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	rep := Report{Schema: 1, Go: runtime.Version()}
	micro := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		m := Micro{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Micro = append(rep.Micro, m)
		fmt.Printf("%-36s %12.1f ns/op %8d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}

	// The scenario bodies are shared with the package benchmarks via
	// internal/benchscen, so this report measures exactly what
	// `go test -bench` measures.
	for _, n := range []int{10, 100, 1000} {
		n := n
		micro(fmt.Sprintf("flow/churn-disjoint-%d", n), func(b *testing.B) { benchscen.FlowChurn(b, n, false) })
	}
	for _, n := range []int{10, 100, 1000} {
		n := n
		micro(fmt.Sprintf("flow/churn-shared-%d", n), func(b *testing.B) { benchscen.FlowChurn(b, n, true) })
	}
	micro("sim/after-fire", benchscen.AfterFire)
	micro("sim/timer-churn", benchscen.TimerChurn)

	if !*skipExp {
		experiment := func(name string, run func()) {
			start := time.Now()
			run()
			e := Experiment{Name: name, Scale: scale.String(), WallSeconds: time.Since(start).Seconds()}
			rep.Experiments = append(rep.Experiments, e)
			fmt.Printf("%-36s %12.1f s wall\n", name+"@"+e.Scale, e.WallSeconds)
		}
		experiment("fig4-concurrent-migrations", func() { experiments.RunFig4(scale) })
		experiment("campaign-all-policies", func() { experiments.RunCampaign(scale) })
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
