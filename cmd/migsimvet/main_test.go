package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestListSmoke builds the tool and checks -list names every analyzer with
// a one-line doc, mirroring `migsim -list` for strategies.
func TestListSmoke(t *testing.T) {
	tool := filepath.Join(t.TempDir(), "migsimvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building migsimvet: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-list").Output()
	if err != nil {
		t.Fatalf("migsimvet -list: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 5 {
		t.Fatalf("migsimvet -list printed %d lines, want 5:\n%s", len(lines), out)
	}
	for _, name := range []string{"detmaprange", "simclock", "goldenfloat", "registerinit", "errsentinel"} {
		found := false
		for _, line := range lines {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[0] == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("-list output missing analyzer %q with a doc line:\n%s", name, out)
		}
	}
}

// TestPrintPath covers the -print-path convenience documented in README.
func TestPrintPath(t *testing.T) {
	tool := filepath.Join(t.TempDir(), "migsimvet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building migsimvet: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-print-path").Output()
	if err != nil {
		t.Fatalf("migsimvet -print-path: %v", err)
	}
	if got := strings.TrimSpace(string(out)); !filepath.IsAbs(got) {
		t.Fatalf("-print-path printed %q, want an absolute path", got)
	}
}
