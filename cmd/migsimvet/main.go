// Command migsimvet is the simulator's determinism-contract vet tool: five
// project-specific analyzers run through the `go vet -vettool` protocol,
// so the contract that keeps the golden suites bit-for-bit is enforced at
// compile time rather than discovered at golden-diff time.
//
// Usage:
//
//	go build -o bin/migsimvet ./cmd/migsimvet
//	go vet -vettool=$(pwd)/bin/migsimvet ./...
//
//	migsimvet -list           # the suite and its one-line docs
//	migsimvet help simclock   # the full contract for one analyzer
//
// The analyzers, each with a justified-annotation escape hatch
// (DESIGN.md §18):
//
//	detmaprange   order-sensitive map iteration in deterministic packages
//	simclock      wall-clock time / global math/rand in simulation code
//	goldenfloat   decimal float verbs in golden- and seed-capture paths
//	registerinit  strategy.Register outside init() or internal/strategy
//	errsentinel   ==/!= or %v-wrapping of Err* sentinels
package main

import (
	"github.com/hybridmig/hybridmig/internal/analysis/detmaprange"
	"github.com/hybridmig/hybridmig/internal/analysis/driver"
	"github.com/hybridmig/hybridmig/internal/analysis/errsentinel"
	"github.com/hybridmig/hybridmig/internal/analysis/goldenfloat"
	"github.com/hybridmig/hybridmig/internal/analysis/registerinit"
	"github.com/hybridmig/hybridmig/internal/analysis/simclock"
)

func main() {
	driver.Main(
		detmaprange.Analyzer,
		simclock.Analyzer,
		goldenfloat.Analyzer,
		registerinit.Analyzer,
		errsentinel.Analyzer,
	)
}
