// Package hybridmig is a simulation-backed reproduction of "A Hybrid Local
// Storage Transfer Scheme for Live Migration of I/O Intensive Workloads"
// (Nicolae and Cappello, HPDC 2012).
//
// It provides a deterministic discrete-event model of an IaaS datacenter —
// compute nodes with NICs and local disks behind a shared switch fabric, a
// striped repository for base VM images, a parallel file system, guest I/O
// stacks and a QEMU-style pre-copy hypervisor — and, on top of it, the
// paper's contribution: a migration manager implementing the hybrid active
// push / prioritized prefetch scheme for live storage migration, together
// with the four baselines the paper compares against (mirror, postcopy,
// precopy block migration, and shared-PFS storage).
//
// This package is the public facade: it re-exports the types needed to
// assemble testbeds, deploy VM instances per approach, drive the bundled
// workloads (IOR, AsyncWR, CM1), trigger live migrations, and regenerate
// every table and figure of the paper's evaluation. The implementation
// lives in internal/ packages; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// A minimal session:
//
//	cfg := hybridmig.DefaultConfig(10)
//	tb := hybridmig.NewTestbed(cfg)
//	inst := tb.Launch("vm0", 0, hybridmig.OurApproach)
//	ior := hybridmig.NewIOR(hybridmig.DefaultIORParams())
//	tb.Eng.Go("ior", func(p *hybridmig.Proc) { ior.Run(p, inst.Guest) })
//	tb.Eng.Go("mw", func(p *hybridmig.Proc) {
//		p.Sleep(100) // the paper's warm-up
//		tb.MigrateInstance(p, inst, 1)
//	})
//	tb.Run()
//	fmt.Println(inst.MigrationTime)
package hybridmig

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/workload"
)

// Approach names one of the five compared storage transfer strategies.
type Approach = cluster.Approach

// The five approaches of the paper's Table 1.
const (
	OurApproach = cluster.OurApproach
	Mirror      = cluster.Mirror
	Postcopy    = cluster.Postcopy
	Precopy     = cluster.Precopy
	PVFSShared  = cluster.PVFSShared
)

// Approaches lists all five approaches in the paper's order.
func Approaches() []Approach { return cluster.Approaches() }

// Config assembles every knob of a simulated testbed.
type Config = cluster.Config

// Testbed is a fully assembled simulated datacenter.
type Testbed = cluster.Testbed

// Instance is one deployed VM with its I/O stack and migration results.
type Instance = cluster.Instance

// Proc is a simulation process handle; workload and middleware code runs in
// one.
type Proc = sim.Proc

// Engine is the discrete-event engine driving a testbed.
type Engine = sim.Engine

// DefaultConfig returns the paper's testbed configuration (Section 5.1) for
// the given node count: 117.5 MB/s NICs, 55 MB/s disks, 8 GB/s fabric, 4 GB
// images and RAM, 256 KB chunks.
func DefaultConfig(nodes int) Config { return cluster.DefaultConfig(nodes) }

// SmallConfig returns a 1/16-scale testbed that preserves the paper's
// ratios, for fast experiments and tests.
func SmallConfig(nodes int) Config { return cluster.SmallConfig(nodes) }

// NewTestbed assembles a datacenter: nodes, repository (BlobSeer stand-in),
// parallel file system (PVFS stand-in), and the 4 GB base image installed
// in both.
func NewTestbed(cfg Config) *Testbed { return cluster.New(cfg) }

// Run drives the testbed's simulation until all activity drains.
func Run(tb *Testbed) {
	if err := tb.Eng.RunUntil(1e9); err != nil {
		panic(err)
	}
	tb.Eng.Shutdown()
}

// Campaign orchestration: batches of simultaneous migrations executed under
// an admission policy (see internal/sched and DESIGN.md §9).
type (
	// Policy decides when each migration of a campaign runs.
	Policy = sched.Policy
	// Orchestrator executes migration campaigns; Testbed.MigrateAll wraps
	// one, so most callers never construct it directly.
	Orchestrator = sched.Orchestrator
	// MigrationRequest is one instance → destination-node pair of a campaign.
	MigrationRequest = cluster.MigrationRequest
	// Campaign is the aggregate result of one orchestrated batch of
	// migrations: makespan, total downtime, peak concurrency, traffic.
	Campaign = metrics.Campaign
)

// NewOrchestrator builds a standalone orchestrator over the testbed's
// engine and network (Testbed.MigrateAll is the usual entry point).
func NewOrchestrator(tb *Testbed) *Orchestrator { return sched.New(tb.Eng, tb.Cl.Net) }

// The four campaign policies.
func AllAtOnce() Policy       { return sched.AllAtOnce{} }
func Serial() Policy          { return sched.Serial{} }
func BatchedK(k int) Policy   { return sched.BatchedK{K: k} }
func CycleAware(k int) Policy { return sched.CycleAware{K: k} }

// Policies returns the standard policy set for a campaign of n migrations.
func Policies(n int) []Policy { return sched.Policies(n) }

// Workloads of the paper's evaluation (Section 5.3-5.5).
type (
	// IOR is the HPC I/O benchmark: per iteration, write then read one file
	// sequentially in fixed blocks.
	IOR = workload.IOR
	// AsyncWR mixes compute with asynchronous buffered writes; its counter
	// measures computational potential.
	AsyncWR = workload.AsyncWR
	// CM1 is the BSP atmospheric stencil: compute, halo exchange, barrier,
	// and a periodic output dump per superstep.
	CM1 = workload.CM1
)

// NewIOR builds an IOR benchmark instance.
func NewIOR(p params.IOR) *IOR { return workload.NewIOR(p) }

// NewAsyncWR builds an AsyncWR benchmark instance.
func NewAsyncWR(p params.AsyncWR) *AsyncWR { return workload.NewAsyncWR(p) }

// NewCM1 builds a CM1 coordinator over the testbed's fabric.
func NewCM1(p params.CM1, tb *Testbed) *CM1 { return workload.NewCM1(p, tb.Cl) }

// Workload parameter bundles (paper defaults).
func DefaultIORParams() params.IOR         { return params.DefaultIOR() }
func DefaultAsyncWRParams() params.AsyncWR { return params.DefaultAsyncWR() }
func DefaultCM1Params() params.CM1         { return params.DefaultCM1() }

// Scale selects experiment size for the paper-reproduction runners.
type Scale = experiments.Scale

// Experiment scales.
const (
	ScaleSmall = experiments.ScaleSmall
	ScalePaper = experiments.ScalePaper
)

// Paper-artifact runners: each regenerates the rows of one table or figure
// of the evaluation section. See cmd/paperrepro for the CLI.
var (
	RunTable1 = experiments.RunTable1
	RunFig3   = experiments.RunFig3
	RunFig4   = experiments.RunFig4
	RunFig5   = experiments.RunFig5
)
