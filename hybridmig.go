// Package hybridmig is a simulation-backed reproduction of "A Hybrid Local
// Storage Transfer Scheme for Live Migration of I/O Intensive Workloads"
// (Nicolae and Cappello, HPDC 2012).
//
// It provides a deterministic discrete-event model of an IaaS datacenter —
// compute nodes with NICs and local disks behind a shared switch fabric, a
// striped repository for base VM images, a parallel file system, guest I/O
// stacks and a QEMU-style pre-copy hypervisor — and, on top of it, the
// paper's contribution: a migration manager implementing the hybrid active
// push / prioritized prefetch scheme for live storage migration, together
// with the four baselines the paper compares against (mirror, postcopy,
// precopy block migration, and shared-PFS storage).
//
// The public API is declarative: describe a Scenario — VMs (name, node,
// approach, workload), a migration plan (timed per-VM moves or an
// orchestrated campaign under an admission policy), and run options — then
// call Run, which returns a typed Result and a real error. There is no
// process wiring, no engine access, and no panic on failure; a scenario
// whose work cannot finish by the horizon fails with a *DeadlineError.
//
// A minimal session:
//
//	s := hybridmig.NewScenario(hybridmig.WithNodes(4)).
//		AddVM(hybridmig.VMSpec{
//			Name:     "vm0",
//			Node:     0,
//			Approach: hybridmig.OurApproach,
//			Workload: hybridmig.IOR(nil), // scale-default IOR benchmark
//		}).
//		MigrateAt("vm0", 1, 3) // to node 1, three seconds in
//	res, err := s.Run()
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("migrated in %.2f s\n", res.VM("vm0").MigrationTime)
//
// Observers subscribe through WithObserver and receive the run's trace —
// migration phase transitions, hypervisor pre-copy rounds, campaign
// admissions, degradation samples — as typed events instead of scraping
// logs. The simulation layers publish; observing never perturbs a run.
//
// The implementation lives in internal/ packages; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package hybridmig

import (
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/core"
	"github.com/hybridmig/hybridmig/internal/lease"
	"github.com/hybridmig/hybridmig/internal/metrics"
	"github.com/hybridmig/hybridmig/internal/params"
	"github.com/hybridmig/hybridmig/internal/scenario"
	"github.com/hybridmig/hybridmig/internal/sched"
	"github.com/hybridmig/hybridmig/internal/sim"
	"github.com/hybridmig/hybridmig/internal/strategy"
	"github.com/hybridmig/hybridmig/internal/strategy/adaptive"
)

// Approach names a registered storage transfer strategy.
type Approach = cluster.Approach

// The five approaches of the paper's Table 1, plus the adaptive-threshold
// hybrid this reproduction adds on top (registered through the strategy
// registry; see Strategies).
const (
	OurApproach          = cluster.OurApproach
	Mirror               = cluster.Mirror
	Postcopy             = cluster.Postcopy
	Precopy              = cluster.Precopy
	PVFSShared           = cluster.PVFSShared
	Adaptive    Approach = adaptive.Name
	// MultiAttach dual-attaches the shared volume during switchover under
	// lease-based fencing, modeling RWX multi-attach block migration.
	MultiAttach = cluster.MultiAttach
)

// Approaches lists the paper's five compared approaches in Table 1 order.
// The full registered strategy set — including the adaptive hybrid — is
// Strategies().
func Approaches() []Approach { return cluster.Approaches() }

// Strategies returns the name of every registered storage transfer strategy
// in registration order: the five Table 1 approaches first, then every
// strategy registered on top (the adaptive hybrid ships with this package).
func Strategies() []Approach {
	names := strategy.Names()
	out := make([]Approach, len(names))
	for i, n := range names {
		out[i] = Approach(n)
	}
	return out
}

// StrategyDescription returns the registered summary line for a strategy
// name, reporting ok=false for unregistered names.
func StrategyDescription(a Approach) (desc string, ok bool) {
	return strategy.Describe(string(a))
}

// Config assembles every knob of a simulated testbed. Pass one through
// WithConfig to control the cluster beyond the per-scale defaults.
type Config = cluster.Config

// DefaultConfig returns the paper's testbed configuration (Section 5.1) for
// the given node count: 117.5 MB/s NICs, 55 MB/s disks, 8 GB/s fabric, 4 GB
// images and RAM, 256 KB chunks.
func DefaultConfig(nodes int) Config { return cluster.DefaultConfig(nodes) }

// SmallConfig returns a 1/16-scale testbed that preserves the paper's
// ratios, for fast experiments and tests.
func SmallConfig(nodes int) Config { return cluster.SmallConfig(nodes) }

// Scale selects the run size for scenarios and experiment defaults.
type Scale = scenario.Scale

// Experiment scales.
const (
	ScaleSmall = scenario.ScaleSmall
	ScalePaper = scenario.ScalePaper
)

// Setup bundles the per-scale defaults a run builds on: cluster
// configuration plus the paper's workload parameters and timing constants.
type Setup = scenario.Setup

// SetupFor returns the default Setup for a scale and node count.
func SetupFor(s Scale, nodes int) Setup { return scenario.NewSetup(s, nodes) }

// DeadlineError is returned (wrapped) by Scenario.Run when the simulation
// still has pending work at the horizon; detect it with errors.As.
type DeadlineError = sim.DeadlineError

// CanceledError is returned by Scenario.RunContext when its context was
// canceled before the simulation drained; detect it with errors.As. Unwrap
// exposes the context's cancellation cause.
type CanceledError = scenario.CanceledError

// ErrInvalidScenario is wrapped by every scenario validation failure;
// detect it with errors.Is.
var ErrInvalidScenario = scenario.ErrInvalidScenario

// LeaseOptions are the shared-volume attachment-manager knobs (Config.Lease):
// lease TTL, post-expiry grace period, reconciler interval, and the NoFencing
// split-brain demonstrator switch. The zero value uses the defaults (3/2/1 s,
// fencing on).
type LeaseOptions = lease.Options

// ErrCorruption is wrapped by Scenario.Run when the write-epoch detector
// observed a shared-volume write outside a valid lease (split brain); detect
// it with errors.Is. It can only occur with LeaseOptions.NoFencing set.
var ErrCorruption = lease.ErrCorruption

// Campaign orchestration: batches of simultaneous migrations executed under
// an admission policy (see internal/sched and DESIGN.md §9).
type (
	// Policy decides when each migration of a campaign runs.
	Policy = sched.Policy
	// Campaign is the aggregate result of one orchestrated batch of
	// migrations: makespan, total downtime, peak concurrency, traffic.
	// It marshals to JSON with derived aggregates included.
	Campaign = metrics.Campaign
	// JobStat is the per-migration record of a campaign.
	JobStat = metrics.JobStat
	// TagBytes attributes campaign traffic to one flow tag.
	TagBytes = metrics.TagBytes
)

// The four campaign policies.
func AllAtOnce() Policy       { return sched.AllAtOnce{} }
func Serial() Policy          { return sched.Serial{} }
func BatchedK(k int) Policy   { return sched.BatchedK{K: k} }
func CycleAware(k int) Policy { return sched.CycleAware{K: k} }

// Policies returns the standard policy set for a campaign of n migrations.
func Policies(n int) []Policy { return sched.Policies(n) }

// Workload parameter bundles (paper defaults). Pass pointers to these — or
// nil for the run scale's defaults — when declaring workloads.
type (
	// IORParams configures the IOR HPC I/O benchmark (Section 5.3).
	IORParams = params.IOR
	// AsyncWRParams configures the compute + asynchronous-write benchmark.
	AsyncWRParams = params.AsyncWR
	// CM1Params configures the CM1 BSP stencil application (Section 5.5).
	CM1Params = params.CM1
	// RewriteParams configures the hot/cold rewrite workload.
	RewriteParams = params.Rewrite
)

// Paper-default workload parameters.
func DefaultIORParams() IORParams         { return params.DefaultIOR() }
func DefaultAsyncWRParams() AsyncWRParams { return params.DefaultAsyncWR() }
func DefaultCM1Params() CM1Params         { return params.DefaultCM1() }
func DefaultRewriteParams() RewriteParams { return params.DefaultRewrite() }

// CoreStats exposes the migration manager's per-VM transfer statistics
// (pushed/pulled/prefetched bytes and chunks, dedup hits, ...).
type CoreStats = core.Stats
