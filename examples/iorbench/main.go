// iorbench compares all five storage transfer approaches under the paper's
// I/O-intensive IOR scenario (Section 5.3): one VM runs IOR and is
// live-migrated mid-benchmark; the program prints migration time, traffic,
// and achieved throughput per approach — the data behind Figure 3.
//
// Run with: go run ./examples/iorbench [-scale paper]
package main

import (
	"flag"
	"fmt"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/experiments"
	"github.com/hybridmig/hybridmig/internal/metrics"
)

func main() {
	scaleName := flag.String("scale", "small", "small or paper")
	flag.Parse()
	scale := hybridmig.ScaleSmall
	if *scaleName == "paper" {
		scale = hybridmig.ScalePaper
	}

	fmt.Printf("IOR live-migration comparison (%s scale)\n\n", scale)
	t := metrics.NewTable("", "approach", "migration (s)", "traffic (MB)", "read %", "write %")
	for _, a := range hybridmig.Approaches() {
		r := experiments.RunFig3One(scale, a, "IOR")
		t.AddRow(string(a), r.MigrationTime, r.TrafficMB, r.NormReadPct, r.NormWritePct)
	}
	fmt.Println(t)
	fmt.Println("(throughput normalized to the no-migration maxima: 1 GB/s read, 266 MB/s write)")
}
