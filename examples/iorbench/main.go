// iorbench compares all five storage transfer approaches under the paper's
// I/O-intensive IOR scenario (Section 5.3): one VM runs IOR and is
// live-migrated mid-benchmark; the program prints migration time, traffic,
// and achieved throughput per approach — the data behind Figure 3 — built
// entirely from declarative scenarios.
//
// Run with: go run ./examples/iorbench [-scale paper]
package main

import (
	"flag"
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	scaleName := flag.String("scale", "small", "small or paper")
	flag.Parse()
	scale := hybridmig.ScaleSmall
	if *scaleName == "paper" {
		scale = hybridmig.ScalePaper
	}

	fmt.Printf("IOR live-migration comparison (%s scale)\n\n", scale)
	fmt.Printf("%-14s %14s %13s %8s %8s\n", "approach", "migration (s)", "traffic (MB)", "read %", "write %")
	for _, a := range hybridmig.Approaches() {
		set := hybridmig.SetupFor(scale, 10)
		s := hybridmig.NewScenario(hybridmig.WithConfig(set.Cluster)).
			AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: a,
				Workload: hybridmig.IOR(&set.IOR)}).
			MigrateAt("vm0", 1, set.Warmup)
		res, err := s.Run()
		if err != nil {
			log.Fatalf("iorbench: %s: %v", a, err)
		}
		vm := res.VM("vm0")
		g := set.Cluster.Guest
		fmt.Printf("%-14s %14.2f %13.2f %8.2f %8.2f\n", a,
			vm.MigrationTime,
			res.MigrationTraffic(a)/(1<<20),
			100*vm.Workload.ReadBW()/g.CacheReadBandwidth,
			100*vm.Workload.WriteBW()/g.CacheWriteBandwidth)
	}
	fmt.Println("\n(throughput normalized to the no-migration maxima: 1 GB/s read, 266 MB/s write)")
}
