// Fencing: the multi-attach shared-storage tour. One VM on a shared RWX
// volume migrates with the multiattach strategy — source and destination
// hold the volume simultaneously during switchover, kept safe by lease-based
// fencing. Mid-window the destination node is partitioned off the network:
// its lease goes silent, expires past the TTL, and the reconciler fences it,
// aborting the attempt with a first-class Fenced outcome. The retry budget
// rides out the partition and the migration converges once the network
// heals, with zero split-brain windows and zero write-authority violations.
//
// Run with: go run ./examples/fencing
package main

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	set := hybridmig.SetupFor(hybridmig.ScaleSmall, 4)
	ior := set.IOR

	// A shared-storage switchover completes in well under a second, so the
	// partition lands 0.2 s into the window and outlives TTL+grace (5 s at
	// the defaults) to force a fencing decision.
	partitionAt := set.Warmup + 0.2

	s := hybridmig.NewScenario(
		hybridmig.WithConfig(set.Cluster),
		hybridmig.WithFaults(hybridmig.FaultSpec{
			Kind: hybridmig.FaultPartition, Node: 1, At: partitionAt, Duration: 8,
		}),
		// Enough attempts to ride out the partition: the fenced attempt plus
		// re-acquisitions that fail while the destination is still dark.
		hybridmig.WithRetry(hybridmig.RetrySpec{MaxAttempts: 6, Backoff: 1}),
		// Watch the lease protocol live.
		hybridmig.WithObserver(hybridmig.ObserverFunc(func(e hybridmig.Event) {
			switch e.Kind {
			case hybridmig.KindLeaseAcquired, hybridmig.KindLeaseExpired,
				hybridmig.KindLeaseFenced, hybridmig.KindSplitBrain,
				hybridmig.KindFaultInjected, hybridmig.KindMigrationAborted,
				hybridmig.KindMigrationRetried, hybridmig.KindMigrationCompleted:
				fmt.Println("  ", e)
			}
		})),
	).
		AddVM(hybridmig.VMSpec{
			Name:     "vm0",
			Node:     0,
			Approach: hybridmig.MultiAttach,
			Workload: hybridmig.IOR(&ior),
		}).
		MigrateAt("vm0", 1, set.Warmup)

	fmt.Println("lease timeline:")
	res, err := s.Run()
	if err != nil {
		log.Fatalf("fencing: %v", err)
	}

	vm := res.VM("vm0")
	fmt.Println()
	fmt.Printf("migrated:        %v (node%d)\n", vm.Migrated, vm.Node)
	fmt.Printf("fenced attempts: %d of %d aborts (the lease reconciler won)\n",
		vm.Fenced, vm.Aborts)
	fmt.Printf("retries:         %d before the partition healed\n", vm.Retries)
	fmt.Printf("migration time:  %.2f s for the attempt that stuck\n", vm.MigrationTime)
	fmt.Printf("split brain:     %d windows (fencing keeps it at zero)\n",
		res.SplitBrainWindows)
}
