// threshold runs the Algorithm 1 write-count threshold ablation through the
// public API: one VM runs the hot/cold rewrite workload and is live-migrated
// under the hybrid scheme at a sweep of static thresholds, then under the
// adaptive strategy that re-estimates the cutoff online from the observed
// write-heat distribution. The table shows the trade-off the threshold
// controls — pushed bytes (streamed, cheap per byte) against chunks deferred
// to the prioritized pull phase (per-request, serviced with priority) — and
// where the adaptive controller lands without hand-tuning.
//
// Run with: go run ./examples/threshold [-scale paper]
package main

import (
	"flag"
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	scaleName := flag.String("scale", "small", "small or paper")
	flag.Parse()
	scale := hybridmig.ScaleSmall
	if *scaleName == "paper" {
		scale = hybridmig.ScalePaper
	}

	run := func(a hybridmig.Approach, opts ...hybridmig.Option) *hybridmig.VMResult {
		set := hybridmig.SetupFor(scale, 4)
		opts = append(opts, hybridmig.WithConfig(set.Cluster), hybridmig.WithScale(scale))
		s := hybridmig.NewScenario(opts...).
			AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: a,
				Workload: hybridmig.Rewrite(nil)}).
			MigrateAt("vm0", 1, set.Warmup)
		res, err := s.Run()
		if err != nil {
			log.Fatalf("threshold: %s: %v", a, err)
		}
		return res.VM("vm0")
	}

	fmt.Printf("Algorithm 1 threshold ablation, rewrite workload (%s scale)\n\n", scale)
	fmt.Printf("%-12s %14s %12s %12s %12s %10s\n",
		"threshold", "migration (s)", "pushed (MB)", "pulled (MB)", "canceled", "hot chunks")
	row := func(label string, vm *hybridmig.VMResult) {
		st := vm.Core
		fmt.Printf("%-12s %14.2f %12.1f %12.1f %12d %10d\n", label,
			vm.MigrationTime, st.PushedBytes/(1<<20),
			(st.PulledBytes+st.OnDemandBytes)/(1<<20),
			st.CanceledPushes, st.SkippedHot)
	}
	for _, t := range []uint32{1, 2, 3, 8, 64} {
		row(fmt.Sprintf("%d", t), run(hybridmig.OurApproach, hybridmig.WithThreshold(t)))
	}
	row("adaptive", run(hybridmig.Adaptive))

	fmt.Println("\nLow thresholds defer warm chunks to the pull phase; high thresholds")
	fmt.Println("push hot chunks repeatedly. The adaptive strategy resamples the live")
	fmt.Println("write-heat distribution and picks the cutoff itself.")
}
