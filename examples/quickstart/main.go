// Quickstart: deploy one VM backed by the hybrid migration manager, give it
// some I/O, live-migrate it, and print what the migration cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	// A small-scale testbed (1/16 of the paper's sizes) with 4 nodes.
	cfg := hybridmig.SmallConfig(4)
	tb := hybridmig.NewTestbed(cfg)

	// One VM on node 0 using the paper's approach.
	inst := tb.Launch("vm0", 0, hybridmig.OurApproach)

	// A little guest activity: create a file and keep rewriting a part of it
	// so the migration has both cold and hot chunks to deal with.
	tb.Eng.Go("workload", func(p *hybridmig.Proc) {
		f := inst.Guest.FS.Create("scratch.dat", 64<<20)
		for i := 0; i < 16; i++ {
			inst.Guest.FS.Write(p, f, 0, 32<<20) // hot half
			inst.Guest.FS.Write(p, f, 32<<20, 32<<20)
			p.Sleep(0.5)
		}
	})

	// The cloud middleware migrates the VM to node 1 after a short warm-up.
	tb.Eng.Go("middleware", func(p *hybridmig.Proc) {
		p.Sleep(3)
		tb.MigrateInstance(p, inst, 1)
	})

	hybridmig.Run(tb)

	st := inst.CoreStats
	fmt.Printf("migration time:      %.2f s (control transfer at %.2f s)\n",
		inst.MigrationTime, st.ControlAt-st.RequestedAt)
	fmt.Printf("downtime:            %.0f ms\n", inst.HVResult.Downtime*1000)
	fmt.Printf("chunks pushed:       %d (%.1f MB on the wire)\n", st.PushedChunks, st.PushedBytes/(1<<20))
	fmt.Printf("chunks pulled:       %d background + %d on-demand\n", st.PulledChunks, st.OnDemandPulls)
	fmt.Printf("hot chunks deferred: %d (write count reached the threshold)\n", st.SkippedHot)
	fmt.Printf("base prefetched:     %.1f MB from the repository\n", st.PrefetchBytes/(1<<20))
	fmt.Printf("VM now on:           %v\n", inst.VM.Node)
}
