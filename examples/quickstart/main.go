// Quickstart: declare one VM backed by the hybrid migration manager, give
// it a hot/cold rewrite workload, live-migrate it, and print what the
// migration cost — all through the declarative Scenario API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	// A little guest activity: keep rewriting a file (hot leading half,
	// cold remainder) so the migration has both hot and cold chunks to
	// deal with.
	wl := hybridmig.DefaultRewriteParams()

	// One VM on node 0 using the paper's approach, on a small-scale
	// testbed (1/16 of the paper's sizes) with 4 nodes; the cloud
	// middleware migrates it to node 1 after a short warm-up.
	s := hybridmig.NewScenario(hybridmig.WithNodes(4)).
		AddVM(hybridmig.VMSpec{
			Name:     "vm0",
			Node:     0,
			Approach: hybridmig.OurApproach,
			Workload: hybridmig.Rewrite(&wl),
		}).
		MigrateAt("vm0", 1, 3)

	res, err := s.Run()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	vm := res.VM("vm0")
	st := vm.Core
	fmt.Printf("migration time:      %.2f s (control transfer at %.2f s)\n",
		vm.MigrationTime, st.ControlAt-st.RequestedAt)
	fmt.Printf("downtime:            %.0f ms\n", vm.Downtime*1000)
	fmt.Printf("chunks pushed:       %d (%.1f MB on the wire)\n", st.PushedChunks, st.PushedBytes/(1<<20))
	fmt.Printf("chunks pulled:       %d background + %d on-demand\n", st.PulledChunks, st.OnDemandPulls)
	fmt.Printf("hot chunks deferred: %d (write count reached the threshold)\n", st.SkippedHot)
	fmt.Printf("base prefetched:     %.1f MB from the repository\n", st.PrefetchBytes/(1<<20))
	fmt.Printf("VM now on:           node%d\n", vm.Node)
}
