// cm1 runs the paper's Section 5.5 scenario at small scale: a CM1-like BSP
// stencil across a grid of VMs, with successive live migrations 8 seconds
// apart. It shows the barrier-coupling effect Figure 5(c) hinges on: every
// second a migrated rank loses delays the whole application.
//
// Run with: go run ./examples/cm1
package main

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

const migrations = 2

func main() {
	p := hybridmig.DefaultCM1Params()
	p.Procs, p.GridX, p.GridY = 16, 4, 4
	p.Intervals = 8
	p.ComputePerIntvl = 6
	p.OutputSize = 12 << 20
	p.HaloBytes = 1 << 20
	p.WorkingSet = 48 << 20
	p.MemoryDirtyRate = 10 << 20

	s := hybridmig.NewScenario(
		hybridmig.WithNodes(p.Procs+migrations),
		hybridmig.WithCM1(p),
	)
	for i := 0; i < p.Procs; i++ {
		s.AddVM(hybridmig.VMSpec{Name: fmt.Sprintf("rank%02d", i), Node: i,
			Approach: hybridmig.OurApproach})
	}
	for k := 0; k < migrations; k++ {
		s.MigrateAt(fmt.Sprintf("rank%02d", k), p.Procs+k, 8*float64(k+1))
	}

	res, err := s.Run()
	if err != nil {
		log.Fatalf("cm1: %v", err)
	}

	fmt.Printf("CM1 %dx%d, %d supersteps, %d successive migrations:\n\n",
		p.GridX, p.GridY, p.Intervals, migrations)
	var cumul float64
	for k := 0; k < migrations; k++ {
		vm := res.VM(fmt.Sprintf("rank%02d", k))
		fmt.Printf("  rank%02d migrated in %.2f s\n", k, vm.MigrationTime)
		cumul += vm.MigrationTime
	}
	fmt.Printf("\ncumulated migration time: %.2f s\n", cumul)
	fmt.Printf("application runtime:      %.2f s (%d supersteps)\n",
		res.CM1.Runtime, res.CM1.Intervals)
	fmt.Println("\nCompare against a migration-free run (drop the MigrateAt calls)")
	fmt.Println("to see the barrier-coupled slowdown of Figure 5(c).")
}
