// cm1 runs the paper's Section 5.5 scenario at small scale: a CM1-like BSP
// stencil across a grid of VMs, with successive live migrations 8 seconds
// apart. It shows the barrier-coupling effect Figure 5(c) hinges on: every
// second a migrated rank loses delays the whole application.
//
// Run with: go run ./examples/cm1
package main

import (
	"fmt"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/guest"
)

const migrations = 2

func main() {
	p := hybridmig.DefaultCM1Params()
	p.Procs, p.GridX, p.GridY = 16, 4, 4
	p.Intervals = 8
	p.ComputePerIntvl = 6
	p.OutputSize = 12 << 20
	p.HaloBytes = 1 << 20
	p.WorkingSet = 48 << 20
	p.MemoryDirtyRate = 10 << 20

	cfg := hybridmig.SmallConfig(p.Procs + migrations)
	tb := hybridmig.NewTestbed(cfg)
	cm1 := hybridmig.NewCM1(p, tb)

	insts := make([]*hybridmig.Instance, p.Procs)
	guests := make([]*guest.Guest, p.Procs)
	for i := range insts {
		insts[i] = tb.Launch(fmt.Sprintf("rank%02d", i), i, hybridmig.OurApproach)
		guests[i] = insts[i].Guest
	}
	for i := range insts {
		i := i
		tb.Eng.Go(fmt.Sprintf("cm1rank%02d", i), func(pr *hybridmig.Proc) {
			cm1.Rank(pr, i, guests[i], guests)
		})
	}
	for k := 0; k < migrations; k++ {
		k := k
		tb.Eng.Go(fmt.Sprintf("mw%d", k), func(pr *hybridmig.Proc) {
			pr.Sleep(8 * float64(k+1))
			tb.MigrateInstance(pr, insts[k], p.Procs+k)
		})
	}

	hybridmig.Run(tb)

	fmt.Printf("CM1 %dx%d, %d supersteps, %d successive migrations:\n\n",
		p.GridX, p.GridY, p.Intervals, migrations)
	var cumul float64
	for k := 0; k < migrations; k++ {
		fmt.Printf("  rank%02d migrated in %.2f s\n", k, insts[k].MigrationTime)
		cumul += insts[k].MigrationTime
	}
	fmt.Printf("\ncumulated migration time: %.2f s\n", cumul)
	fmt.Printf("application runtime:      %.2f s (%d supersteps)\n",
		cm1.Report.Runtime, cm1.Report.Intervals)
	fmt.Println("\nCompare against a migration-free run (comment the middleware out)")
	fmt.Println("to see the barrier-coupled slowdown of Figure 5(c).")
}
