// Faults: the degraded-mode tour. One IOR VM migrates while the cluster
// misbehaves — background tenant traffic competes for the destination NIC,
// the destination's link degrades mid-transfer, and then the destination
// node crashes outright, aborting the migration. A bounded retry budget
// brings the migration home on the second attempt, and the observer stream
// shows every fault, abort, and retry as it happens.
//
// Run with: go run ./examples/faults
package main

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

func main() {
	set := hybridmig.SetupFor(hybridmig.ScaleSmall, 4)
	ior := set.IOR

	s := hybridmig.NewScenario(
		hybridmig.WithConfig(set.Cluster),
		// Another tenant hammers the destination's NIC for the first
		// minute of the run.
		hybridmig.WithBackgroundTraffic(hybridmig.TrafficSpec{
			Src: 2, Dst: 1, Start: 0, Stop: 60, Rate: 30 << 20,
		}),
		// The destination NIC degrades to 40% right as the migration
		// starts, and the node crashes 1.5 s in.
		hybridmig.WithFaults(
			hybridmig.FaultSpec{Kind: hybridmig.FaultLinkDegrade,
				Node: 1, At: set.Warmup, Factor: 0.4, Duration: 6},
			hybridmig.FaultSpec{Kind: hybridmig.FaultDestCrash,
				VM: "vm0", At: set.Warmup + 1.5},
		),
		// Three attempts with a one-second backoff, doubling each time.
		hybridmig.WithRetry(hybridmig.RetrySpec{MaxAttempts: 3, Backoff: 1, Factor: 2}),
		// Watch the fault lifecycle live.
		hybridmig.WithObserver(hybridmig.ObserverFunc(func(e hybridmig.Event) {
			switch e.Kind {
			case hybridmig.KindFaultInjected, hybridmig.KindMigrationAborted,
				hybridmig.KindMigrationRetried, hybridmig.KindLinkCapacity,
				hybridmig.KindMigrationCompleted:
				fmt.Println("  ", e)
			}
		})),
	).
		AddVM(hybridmig.VMSpec{
			Name:     "vm0",
			Node:     0,
			Approach: hybridmig.OurApproach,
			Workload: hybridmig.IOR(&ior),
		}).
		MigrateAt("vm0", 1, set.Warmup)

	fmt.Println("fault timeline:")
	res, err := s.Run()
	if err != nil {
		log.Fatalf("faults: %v", err)
	}

	vm := res.VM("vm0")
	fmt.Println()
	fmt.Printf("migrated:        %v (node%d)\n", vm.Migrated, vm.Node)
	fmt.Printf("attempts:        %d (%d aborted, %d retries)\n",
		vm.Aborts+1, vm.Aborts, vm.Retries)
	fmt.Printf("wasted traffic:  %.1f MB thrown away by the aborted attempt\n",
		vm.AbortedBytes/(1<<20))
	fmt.Printf("migration time:  %.2f s for the attempt that stuck\n", vm.MigrationTime)
	fmt.Printf("downtime:        %.0f ms\n", vm.Downtime*1000)
	fmt.Printf("background:      %.1f MB of tenant cross traffic shared the fabric\n",
		res.Traffic["background"]/(1<<20))
}
