// concurrent reproduces a slice of the paper's Section 5.4 scenario: a fleet
// of AsyncWR VMs, half of which live-migrate simultaneously, exercising the
// datacenter under concurrent migration load.
//
// Run with: go run ./examples/concurrent
package main

import (
	"fmt"

	hybridmig "github.com/hybridmig/hybridmig"
)

const (
	sources    = 6
	concurrent = 3
)

func main() {
	cfg := hybridmig.SmallConfig(2 * sources)
	tb := hybridmig.NewTestbed(cfg)

	// Deploy the fleet, each VM running AsyncWR (compute + async writes).
	insts := make([]*hybridmig.Instance, sources)
	loads := make([]*hybridmig.AsyncWR, sources)
	for i := 0; i < sources; i++ {
		i := i
		insts[i] = tb.Launch(fmt.Sprintf("vm%d", i), i, hybridmig.OurApproach)
		p := hybridmig.DefaultAsyncWRParams()
		p.Iterations = 60
		p.DataPerIter = 2 << 20
		p.ComputeTime = 0.35
		p.WorkingSet = 16 << 20
		p.MemoryDirtyRate = 8 << 20
		loads[i] = hybridmig.NewAsyncWR(p)
		tb.Eng.Go(fmt.Sprintf("asyncwr%d", i), func(pr *hybridmig.Proc) {
			loads[i].Run(pr, insts[i].Guest)
		})
	}

	// Migrate the first half simultaneously after a warm-up.
	for k := 0; k < concurrent; k++ {
		k := k
		tb.Eng.Go(fmt.Sprintf("mw%d", k), func(p *hybridmig.Proc) {
			p.Sleep(8)
			tb.MigrateInstance(p, insts[k], sources+k)
		})
	}

	hybridmig.Run(tb)

	fmt.Printf("%d simultaneous migrations of %d AsyncWR VMs:\n\n", concurrent, sources)
	var sumMig float64
	for k := 0; k < concurrent; k++ {
		fmt.Printf("  %s: migrated in %6.2f s (downtime %4.0f ms)\n",
			insts[k].Name, insts[k].MigrationTime, insts[k].HVResult.Downtime*1000)
		sumMig += insts[k].MigrationTime
	}
	fmt.Printf("\navg migration time: %.2f s\n", sumMig/concurrent)
	var iter int64
	for _, w := range loads {
		iter += w.Report.Counter
	}
	fmt.Printf("aggregate compute:  %d iterations across the fleet\n", iter)
	fmt.Printf("fabric traffic:     %.1f MB total\n", tb.Cl.Fabric.Bytes()/(1<<20))
}
