// concurrent reproduces a slice of the paper's Section 5.4 scenario — a
// fleet of AsyncWR VMs, half of which live-migrate together — and compares
// the orchestration policies the campaign layer provides: the same batch of
// migrations runs all-at-once, serially, with admission control capped at
// two, and cycle-aware (deferred to each workload's low-I/O window).
//
// Run with: go run ./examples/concurrent
package main

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

const (
	sources    = 6
	concurrent = 3
)

// campaign builds a fresh fleet scenario and migrates the first half under
// pol, returning the campaign stats and the fleet's aggregate compute
// counter.
func campaign(pol hybridmig.Policy) (*hybridmig.Campaign, int64) {
	p := hybridmig.DefaultAsyncWRParams()
	p.Iterations = 60
	p.DataPerIter = 2 << 20
	p.ComputeTime = 0.35
	p.WorkingSet = 16 << 20
	p.MemoryDirtyRate = 8 << 20

	// Deploy the fleet, each VM running AsyncWR (compute + async writes),
	// and migrate the first half as one campaign after a warm-up.
	s := hybridmig.NewScenario(hybridmig.WithNodes(2 * sources))
	steps := make([]hybridmig.Step, concurrent)
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("vm%d", i)
		s.AddVM(hybridmig.VMSpec{Name: name, Node: i,
			Approach: hybridmig.OurApproach, Workload: hybridmig.AsyncWR(&p, 0)})
		if i < concurrent {
			steps[i] = hybridmig.Step{VM: name, Dst: sources + i}
		}
	}
	s.Campaign(8, pol, steps...)

	res, err := s.Run()
	if err != nil {
		log.Fatalf("concurrent: %s: %v", pol.Name(), err)
	}
	return res.Campaigns[0], int64(res.TotalCounter())
}

func main() {
	fmt.Printf("%d migrations of %d AsyncWR VMs, one campaign per policy:\n\n", concurrent, sources)
	policies := []hybridmig.Policy{
		hybridmig.AllAtOnce(),
		hybridmig.Serial(),
		hybridmig.BatchedK(2),
		hybridmig.CycleAware(0),
	}
	fmt.Printf("%-12s %10s %10s %12s %10s %6s\n",
		"policy", "makespan", "avg mig", "downtime", "moved", "compute")
	for _, pol := range policies {
		c, iter := campaign(pol)
		fmt.Printf("%-12s %8.2f s %8.2f s %9.0f ms %7.1f MB %6d\n",
			c.Policy, c.Makespan(), c.AvgMigrationTime(),
			c.TotalDowntime*1000, c.TransferredBytes/(1<<20), iter)
	}
	fmt.Println("\n(identical fleets; only the admission policy differs)")
}
