package hybridmig_test

import (
	"fmt"
	"testing"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/guest"
)

// TestPublicAPIQuickstart runs the doc-comment session end to end through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := hybridmig.SmallConfig(4)
	tb := hybridmig.NewTestbed(cfg)
	inst := tb.Launch("vm0", 0, hybridmig.OurApproach)

	p := hybridmig.DefaultIORParams()
	p.Iterations = 4
	p.FileSize = 32 << 20
	ior := hybridmig.NewIOR(p)
	inst.Guest.Buffered = false
	tb.Eng.Go("ior", func(pr *hybridmig.Proc) { ior.Run(pr, inst.Guest) })
	tb.Eng.Go("mw", func(pr *hybridmig.Proc) {
		pr.Sleep(2)
		tb.MigrateInstance(pr, inst, 1)
	})
	hybridmig.Run(tb)

	if !inst.Migrated {
		t.Fatal("migration incomplete")
	}
	if inst.MigrationTime <= 0 {
		t.Fatalf("migration time %v", inst.MigrationTime)
	}
	if ior.Report.Iterations != 4 {
		t.Fatalf("IOR iterations = %d", ior.Report.Iterations)
	}
	if inst.VM.Node != tb.Cl.Nodes[1] {
		t.Fatal("VM not on destination")
	}
}

// TestPublicAPIAllApproaches deploys and migrates every approach through
// the facade.
func TestPublicAPIAllApproaches(t *testing.T) {
	if len(hybridmig.Approaches()) != 5 {
		t.Fatal("expected five approaches")
	}
	for i, a := range hybridmig.Approaches() {
		cfg := hybridmig.SmallConfig(12)
		tb := hybridmig.NewTestbed(cfg)
		inst := tb.Launch("vm", i, a)
		tb.Eng.Go("wl", func(pr *hybridmig.Proc) {
			f := inst.Guest.FS.Create("d", 16<<20)
			inst.Guest.FS.Write(pr, f, 0, 16<<20)
		})
		tb.Eng.Go("mw", func(pr *hybridmig.Proc) {
			pr.Sleep(1)
			tb.MigrateInstance(pr, inst, i+6)
		})
		hybridmig.Run(tb)
		if !inst.Migrated {
			t.Fatalf("%s: migration incomplete", a)
		}
	}
}

// TestPublicAPICampaign drives the orchestration surface end to end: a
// four-VM fleet migrated as one campaign under each of the four policies,
// entirely through the facade.
func TestPublicAPICampaign(t *testing.T) {
	pols := hybridmig.Policies(4)
	if len(pols) != 4 {
		t.Fatalf("policy set size %d", len(pols))
	}
	pols = append(pols, hybridmig.AllAtOnce(), hybridmig.Serial(),
		hybridmig.BatchedK(3), hybridmig.CycleAware(2))
	for _, pol := range pols {
		cfg := hybridmig.SmallConfig(8)
		tb := hybridmig.NewTestbed(cfg)
		reqs := make([]hybridmig.MigrationRequest, 4)
		for k := range reqs {
			inst := tb.Launch(fmt.Sprintf("vm%d", k), k, hybridmig.OurApproach)
			reqs[k] = hybridmig.MigrationRequest{Inst: inst, DstIdx: 4 + k}
		}
		var c *hybridmig.Campaign
		tb.Eng.Go("orch", func(p *hybridmig.Proc) {
			p.Sleep(1)
			c = tb.MigrateAll(p, reqs, pol)
		})
		hybridmig.Run(tb)
		if c == nil {
			t.Fatalf("%s: campaign incomplete", pol.Name())
		}
		if c.Jobs != 4 || c.Makespan() <= 0 || c.TransferredBytes <= 0 {
			t.Errorf("%s: degenerate campaign %+v", pol.Name(), c)
		}
		for k, r := range reqs {
			if !r.Inst.Migrated {
				t.Errorf("%s: vm%d not migrated", pol.Name(), k)
			}
			if r.Inst.VM.Node != tb.Cl.Nodes[4+k] {
				t.Errorf("%s: vm%d not on destination", pol.Name(), k)
			}
		}
	}
}

// TestPublicAPICM1 runs the CM1 workload through the facade with one
// migration, checking the barrier-coupled application keeps its shape.
func TestPublicAPICM1(t *testing.T) {
	p := hybridmig.DefaultCM1Params()
	p.Procs, p.GridX, p.GridY = 4, 2, 2
	p.Intervals = 3
	p.ComputePerIntvl = 1
	p.OutputSize = 4 << 20
	p.HaloBytes = 256 << 10
	p.WorkingSet = 16 << 20
	p.MemoryDirtyRate = 8 << 20

	cfg := hybridmig.SmallConfig(6)
	tb := hybridmig.NewTestbed(cfg)
	cm1 := hybridmig.NewCM1(p, tb)
	insts := make([]*hybridmig.Instance, p.Procs)
	guests := make([]*guest.Guest, p.Procs)
	for i := range insts {
		insts[i] = tb.Launch(fmt.Sprintf("rank%d", i), i, hybridmig.OurApproach)
		guests[i] = insts[i].Guest
	}
	for i := range insts {
		i := i
		tb.Eng.Go(fmt.Sprintf("cm1-%d", i), func(pr *hybridmig.Proc) {
			cm1.Rank(pr, i, guests[i], guests)
		})
	}
	tb.Eng.Go("mw", func(pr *hybridmig.Proc) {
		pr.Sleep(1)
		tb.MigrateInstance(pr, insts[0], 4)
	})
	hybridmig.Run(tb)

	if cm1.Report.Intervals != 3 {
		t.Fatalf("CM1 finished %d intervals, want 3", cm1.Report.Intervals)
	}
	if !insts[0].Migrated {
		t.Fatal("migration incomplete")
	}
	if cm1.Report.Runtime <= 3 {
		t.Fatalf("runtime %v implausibly short", cm1.Report.Runtime)
	}
}
