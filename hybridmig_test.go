package hybridmig_test

import (
	"errors"
	"fmt"
	"testing"

	hybridmig "github.com/hybridmig/hybridmig"
)

// TestPublicAPIQuickstart runs the doc-comment session end to end through
// the facade only: declare, run, read the result.
func TestPublicAPIQuickstart(t *testing.T) {
	p := hybridmig.DefaultIORParams()
	p.Iterations = 4
	p.FileSize = 32 << 20
	s := hybridmig.NewScenario(hybridmig.WithNodes(4)).
		AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0,
			Approach: hybridmig.OurApproach, Workload: hybridmig.IOR(&p)}).
		MigrateAt("vm0", 1, 2)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VM("vm0")
	if vm == nil || !vm.Migrated {
		t.Fatal("migration incomplete")
	}
	if vm.MigrationTime <= 0 {
		t.Fatalf("migration time %v", vm.MigrationTime)
	}
	if vm.Workload.Iterations != 4 {
		t.Fatalf("IOR iterations = %d", vm.Workload.Iterations)
	}
	if vm.Node != 1 {
		t.Fatalf("VM on node %d, want 1", vm.Node)
	}
}

// TestPublicAPIAllApproaches deploys and migrates every approach through
// the facade.
func TestPublicAPIAllApproaches(t *testing.T) {
	if len(hybridmig.Approaches()) != 5 {
		t.Fatal("expected five approaches")
	}
	for i, a := range hybridmig.Approaches() {
		rw := hybridmig.DefaultRewriteParams()
		rw.FileSize = 16 << 20
		rw.HotBytes = 0
		rw.Iterations = 1
		s := hybridmig.NewScenario(hybridmig.WithNodes(12)).
			AddVM(hybridmig.VMSpec{Name: "vm", Node: i, Approach: a,
				Workload: hybridmig.Rewrite(&rw)}).
			MigrateAt("vm", i+6, 1)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !res.VM("vm").Migrated {
			t.Fatalf("%s: migration incomplete", a)
		}
		if res.VM("vm").Node != i+6 {
			t.Fatalf("%s: VM not on destination", a)
		}
	}
}

// TestPublicAPIStrategyRegistry pins the facade's registry surface: the
// paper's five approaches lead the list, the adaptive hybrid ships on top,
// and every entry resolves to a description.
func TestPublicAPIStrategyRegistry(t *testing.T) {
	all := hybridmig.Strategies()
	if len(all) < 6 {
		t.Fatalf("registry lists %d strategies, want the five approaches plus adaptive", len(all))
	}
	for i, a := range hybridmig.Approaches() {
		if all[i] != a {
			t.Fatalf("Strategies()[%d] = %s, want %s (Table 1 order first)", i, all[i], a)
		}
	}
	found := false
	for _, a := range all {
		if a == hybridmig.Adaptive {
			found = true
		}
		if d, ok := hybridmig.StrategyDescription(a); !ok || d == "" {
			t.Errorf("strategy %s has no description", a)
		}
	}
	if !found {
		t.Fatal("adaptive strategy not registered through the facade")
	}
	if _, ok := hybridmig.StrategyDescription("warp-drive"); ok {
		t.Fatal("StrategyDescription invented a strategy")
	}
}

// TestPublicAPIThresholdAblation runs the same push-based scenario at two
// static thresholds plus adaptive through WithThreshold and the registry:
// the cutoff must change what the push phase defers (the paper's threshold
// ablation axis), without breaking completion.
func TestPublicAPIThresholdAblation(t *testing.T) {
	run := func(a hybridmig.Approach, opts ...hybridmig.Option) *hybridmig.VMResult {
		rw := hybridmig.DefaultRewriteParams()
		s := hybridmig.NewScenario(append(opts, hybridmig.WithNodes(4))...).
			AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: a,
				Workload: hybridmig.Rewrite(&rw)}).
			MigrateAt("vm0", 1, 3)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		vm := res.VM("vm0")
		if !vm.Migrated {
			t.Fatalf("%s: migration incomplete", a)
		}
		return vm
	}
	loose := run(hybridmig.OurApproach, hybridmig.WithThreshold(1000))
	tight := run(hybridmig.OurApproach, hybridmig.WithThreshold(1))
	if tight.Core.SkippedHot <= loose.Core.SkippedHot {
		t.Errorf("threshold 1 deferred %d chunks, threshold 1000 deferred %d — ablation has no effect",
			tight.Core.SkippedHot, loose.Core.SkippedHot)
	}
	adaptive := run(hybridmig.Adaptive)
	if adaptive.Core.PushedChunks+adaptive.Core.PulledChunks+adaptive.Core.OnDemandPulls == 0 {
		t.Error("adaptive run moved no storage")
	}
}

// TestPublicAPICampaign drives the orchestration surface end to end: a
// four-VM fleet migrated as one campaign under each of the standard
// policies, entirely through the facade.
func TestPublicAPICampaign(t *testing.T) {
	pols := hybridmig.Policies(4)
	if len(pols) != 4 {
		t.Fatalf("policy set size %d", len(pols))
	}
	pols = append(pols, hybridmig.AllAtOnce(), hybridmig.Serial(),
		hybridmig.BatchedK(3), hybridmig.CycleAware(2))
	for _, pol := range pols {
		s := hybridmig.NewScenario(hybridmig.WithNodes(8))
		steps := make([]hybridmig.Step, 4)
		for k := range steps {
			name := fmt.Sprintf("vm%d", k)
			s.AddVM(hybridmig.VMSpec{Name: name, Node: k, Approach: hybridmig.OurApproach})
			steps[k] = hybridmig.Step{VM: name, Dst: 4 + k}
		}
		s.Campaign(1, pol, steps...)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		c := res.Campaigns[0]
		if c.Jobs != 4 || c.Makespan() <= 0 || c.TransferredBytes <= 0 {
			t.Errorf("%s: degenerate campaign %+v", pol.Name(), c)
		}
		for k := range steps {
			vm := res.VM(fmt.Sprintf("vm%d", k))
			if !vm.Migrated {
				t.Errorf("%s: vm%d not migrated", pol.Name(), k)
			}
			if vm.Node != 4+k {
				t.Errorf("%s: vm%d not on destination", pol.Name(), k)
			}
		}
	}
}

// TestPublicAPICM1 runs the CM1 workload through the facade with one
// migration, checking the barrier-coupled application keeps its shape.
func TestPublicAPICM1(t *testing.T) {
	p := hybridmig.DefaultCM1Params()
	p.Procs, p.GridX, p.GridY = 4, 2, 2
	p.Intervals = 3
	p.ComputePerIntvl = 1
	p.OutputSize = 4 << 20
	p.HaloBytes = 256 << 10
	p.WorkingSet = 16 << 20
	p.MemoryDirtyRate = 8 << 20

	s := hybridmig.NewScenario(hybridmig.WithNodes(6), hybridmig.WithCM1(p))
	for i := 0; i < 4; i++ {
		s.AddVM(hybridmig.VMSpec{Name: fmt.Sprintf("rank%d", i), Node: i,
			Approach: hybridmig.OurApproach})
	}
	s.MigrateAt("rank0", 4, 1)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CM1 == nil || res.CM1.Intervals != 3 {
		t.Fatalf("CM1 finished %+v, want 3 intervals", res.CM1)
	}
	if !res.VM("rank0").Migrated {
		t.Fatal("migration incomplete")
	}
	if res.CM1.Runtime <= 3 {
		t.Fatalf("runtime %v implausibly short", res.CM1.Runtime)
	}
}

// TestPublicAPIErrors pins the typed error surface: validation failures wrap
// ErrInvalidScenario; horizon overruns are *DeadlineError.
func TestPublicAPIErrors(t *testing.T) {
	_, err := hybridmig.NewScenario().Run()
	if !errors.Is(err, hybridmig.ErrInvalidScenario) {
		t.Fatalf("empty scenario error %v does not wrap ErrInvalidScenario", err)
	}

	// The trigger must sit inside the horizon (a trigger past it is a
	// validation error); the migration then overruns the 0.5 s budget.
	s := hybridmig.NewScenario(hybridmig.WithNodes(4), hybridmig.WithHorizon(0.5)).
		AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: hybridmig.OurApproach,
			Workload: hybridmig.Rewrite(nil)}).
		MigrateAt("vm0", 1, 0.25)
	_, err = s.Run()
	var de *hybridmig.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("horizon overrun error %T is not a *DeadlineError", err)
	}
}

// TestPublicAPIObserver checks the facade observer hook sees the migration
// lifecycle in order.
func TestPublicAPIObserver(t *testing.T) {
	var kinds []hybridmig.EventKind
	obs := hybridmig.ObserverFunc(func(e hybridmig.Event) { kinds = append(kinds, e.Kind) })
	s := hybridmig.NewScenario(hybridmig.WithNodes(4), hybridmig.WithObserver(obs)).
		AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: hybridmig.OurApproach,
			Workload: hybridmig.Rewrite(nil)}).
		MigrateAt("vm0", 1, 2)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var sawReq, sawRound, sawDone bool
	for _, k := range kinds {
		switch k {
		case hybridmig.KindMigrationRequested:
			sawReq = true
		case hybridmig.KindRound:
			if !sawReq {
				t.Fatal("pre-copy round before migration request")
			}
			sawRound = true
		case hybridmig.KindMigrationCompleted:
			if !sawRound {
				t.Fatal("completion before any pre-copy round")
			}
			sawDone = true
		}
	}
	if !sawReq || !sawRound || !sawDone {
		t.Fatalf("lifecycle incomplete: req=%v round=%v done=%v", sawReq, sawRound, sawDone)
	}
}
