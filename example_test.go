package hybridmig_test

import (
	"fmt"
	"log"

	hybridmig "github.com/hybridmig/hybridmig"
)

// The quickstart scenario: one VM backed by the hybrid migration manager
// runs the hot/cold rewrite workload and live-migrates three seconds in.
// The simulation is deterministic, so the printed results are exact.
func Example_quickstart() {
	s := hybridmig.NewScenario(hybridmig.WithNodes(4)).
		AddVM(hybridmig.VMSpec{
			Name:     "vm0",
			Node:     0,
			Approach: hybridmig.OurApproach,
			Workload: hybridmig.Rewrite(nil),
		}).
		MigrateAt("vm0", 1, 3)
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	vm := res.VM("vm0")
	fmt.Printf("migrated:   %v (now on node %d)\n", vm.Migrated, vm.Node)
	fmt.Printf("pushed:     %d chunks\n", vm.Core.PushedChunks)
	fmt.Printf("hot:        %d chunks deferred to the pull phase\n", vm.Core.SkippedHot)
	fmt.Printf("converged:  %v in %d rounds\n", vm.Converged, vm.Rounds)
	// Output:
	// migrated:   true (now on node 1)
	// pushed:     774 chunks
	// hot:        257 chunks deferred to the pull phase
	// converged:  true in 5 rounds
}

// A campaign scenario: four idle VMs migrate as one orchestrated batch with
// admission capped at two simultaneous migrations.
func Example_campaign() {
	s := hybridmig.NewScenario(hybridmig.WithNodes(8))
	steps := make([]hybridmig.Step, 4)
	for k := range steps {
		name := fmt.Sprintf("vm%d", k)
		s.AddVM(hybridmig.VMSpec{Name: name, Node: k, Approach: hybridmig.OurApproach})
		steps[k] = hybridmig.Step{VM: name, Dst: 4 + k}
	}
	s.Campaign(1, hybridmig.BatchedK(2), steps...)
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	c := res.Campaigns[0]
	fmt.Printf("policy:     %s\n", c.Policy)
	fmt.Printf("jobs:       %d, peak %d concurrent\n", c.Jobs, c.PeakConcurrent)
	fmt.Printf("all moved:  %v\n", res.VM("vm3").Migrated)
	// Output:
	// policy:     batched-2
	// jobs:       4, peak 2 concurrent
	// all moved:  true
}

// Observing a run: phase transitions and pre-copy rounds arrive as typed
// events while the scenario executes.
func Example_observer() {
	var phases []string
	obs := hybridmig.ObserverFunc(func(e hybridmig.Event) {
		if e.Kind == hybridmig.KindPhase {
			phases = append(phases, e.Detail)
		}
	})
	s := hybridmig.NewScenario(hybridmig.WithNodes(4), hybridmig.WithObserver(obs)).
		AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: hybridmig.OurApproach}).
		MigrateAt("vm0", 1, 1)
	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(phases)
	// Output:
	// [push control-transfer released]
}
