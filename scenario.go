package hybridmig

import (
	"github.com/hybridmig/hybridmig/internal/scenario"
)

// Scenario is a declarative description of one simulated session: VMs, a
// migration plan, and run options. Build it with NewScenario, AddVM,
// MigrateAt and Campaign, then call Run. A Scenario is single-use state
// about one description; Run may be called repeatedly and each call executes
// a fresh, deterministic simulation of it.
type Scenario = scenario.Scenario

// VMSpec declares one VM: where it starts, which storage transfer approach
// backs it, and what workload it runs.
type VMSpec = scenario.VMSpec

// WorkloadSpec declares a VM's workload; build one with IOR, AsyncWR,
// Rewrite, or leave it zero for an idle guest.
type WorkloadSpec = scenario.WorkloadSpec

// WorkloadKind names a workload family in results.
type WorkloadKind = scenario.WorkloadKind

// The declarative workload families.
const (
	WorkloadNone    = scenario.WorkloadNone
	WorkloadIOR     = scenario.WorkloadIOR
	WorkloadAsyncWR = scenario.WorkloadAsyncWR
	WorkloadRewrite = scenario.WorkloadRewrite
)

// Step is one migration of a campaign: the named VM moves to node Dst when
// the campaign's policy admits it.
type Step = scenario.Step

// FaultSpec schedules one injected fault: a destination crash or migration
// deadline (abort faults, addressed by VM), or a link/fabric degradation
// (addressed by Node/Factor/Duration). See the FaultKind constants.
type FaultSpec = scenario.FaultSpec

// FaultKind names an injectable fault family.
type FaultKind = scenario.FaultKind

// The injectable fault kinds.
const (
	// FaultDestCrash crashes the destination of the named VM's in-flight
	// migration: transfers are canceled, destination state is discarded,
	// and the VM keeps running at (or falls back to) the source.
	FaultDestCrash = scenario.FaultDestCrash
	// FaultDeadline aborts the named VM's migration if still in flight at
	// the fault time — the operator's "took too long" cutoff.
	FaultDeadline = scenario.FaultDeadline
	// FaultLinkDegrade scales a node's NIC bandwidth by Factor for
	// Duration seconds (Factor 0 is a blackout).
	FaultLinkDegrade = scenario.FaultLinkDegrade
	// FaultFabricDegrade scales the shared switch fabric the same way.
	FaultFabricDegrade = scenario.FaultFabricDegrade
	// FaultPartition cuts a node off the network for Duration seconds: its
	// NIC blacks out in both directions and the node counts as unreachable
	// to the shared-volume attachment manager, so leases it holds expire and
	// are fenced once silent past TTL+grace.
	FaultPartition = scenario.FaultPartition
)

// TrafficSpec declares one background cross-traffic source competing with
// migrations for NIC and fabric bandwidth between Start and Stop.
type TrafficSpec = scenario.TrafficSpec

// RetrySpec bounds re-admission of fault-aborted migrations: MaxAttempts
// per migration, Backoff seconds before a retry, scaled by Factor each
// further attempt. The zero value disables retries.
type RetrySpec = scenario.RetrySpec

// Result is what Scenario.Run returns: per-VM migration/downtime stats and
// workload counters, campaign aggregates, and per-tag network traffic.
type Result = scenario.Result

// VMResult is one VM's outcome within a Result.
type VMResult = scenario.VMResult

// WorkloadResult carries one VM workload's counters.
type WorkloadResult = scenario.WorkloadResult

// Option configures a Scenario at construction.
type Option = scenario.Option

// NewScenario returns an empty scenario with the given run options applied.
func NewScenario(opts ...Option) *Scenario { return scenario.New(opts...) }

// IOR declares the IOR benchmark for a VM; p == nil uses the run scale's
// defaults. IOR guests run O_DIRECT, as in the paper.
func IOR(p *IORParams) WorkloadSpec { return scenario.IOR(p) }

// AsyncWR declares the AsyncWR benchmark; p == nil uses the run scale's
// defaults. deadline > 0 stops the workload at that absolute virtual time
// (fixed-horizon degradation measurements compare counters at one instant).
func AsyncWR(p *AsyncWRParams, deadline float64) WorkloadSpec { return scenario.AsyncWR(p, deadline) }

// Rewrite declares the hot/cold rewrite workload; p == nil uses
// DefaultRewriteParams.
func Rewrite(p *RewriteParams) WorkloadSpec { return scenario.Rewrite(p) }

// WithScale selects the run scale (default ScaleSmall): the testbed
// configuration (unless WithConfig overrides it) and the defaults used for
// nil workload parameters both come from it.
func WithScale(s Scale) Option { return scenario.WithScale(s) }

// WithNodes fixes the number of compute nodes. Without it the scenario
// allocates one node past the highest node index it references.
func WithNodes(n int) Option { return scenario.WithNodes(n) }

// WithConfig supplies a complete cluster configuration (see DefaultConfig,
// SmallConfig, SetupFor), overriding the testbed WithScale and WithNodes
// would build. Nil workload parameters still resolve from WithScale — pass
// a matching scale (or explicit parameters) alongside a non-default
// configuration.
func WithConfig(cfg Config) Option { return scenario.WithConfig(cfg) }

// WithCM1 runs the CM1 BSP application across all declared VMs, one rank
// per VM in declaration order; p.Procs must equal the VM count.
func WithCM1(p CM1Params) Option { return scenario.WithCM1(p) }

// WithHorizon bounds the run at the given virtual time in seconds (default
// 1e6). A scenario with pending work at the horizon fails with a
// *DeadlineError instead of being truncated silently.
func WithHorizon(t float64) Option { return scenario.WithHorizon(t) }

// WithObserver subscribes an observer to the run's trace bus.
func WithObserver(o Observer) Option { return scenario.WithObserver(o) }

// WithSampleInterval enables periodic degradation samples (KindSample, one
// per VM every d seconds) while migrations are in flight; it only takes
// effect together with WithObserver.
func WithSampleInterval(d float64) Option { return scenario.WithSampleInterval(d) }

// WithSeedCapture records a hex-float determinism capture of the run into
// Result.SeedCapture, rendering every measured float64 with %x so golden
// tests can diff runs bit for bit.
func WithSeedCapture() Option { return scenario.WithSeedCapture() }

// WithFaults schedules injected faults (destination crashes, migration
// deadlines, link/fabric degradations). Fault times and degradation windows
// must fit inside the horizon.
func WithFaults(fs ...FaultSpec) Option { return scenario.WithFaults(fs...) }

// WithBackgroundTraffic adds persistent cross-tenant traffic generators
// that compete with migrations for bandwidth, reported under the
// "background" traffic tag.
func WithBackgroundTraffic(ts ...TrafficSpec) Option { return scenario.WithBackgroundTraffic(ts...) }

// WithRetry gives fault-aborted migrations a bounded retry budget with
// backoff; without it every abort is terminal. Applies to timed migrations
// and campaigns alike.
func WithRetry(r RetrySpec) Option { return scenario.WithRetry(r) }

// WithThreshold overrides the Algorithm 1 write-count cutoff for every
// push-based strategy in the run (the paper's threshold ablation): chunks
// written at least t times during migration wait for the prioritized pull
// phase instead of being pushed, and t = 0 disables pushing outright. It
// also seeds the adaptive strategy's starting point and has no effect on
// strategies without a push phase.
func WithThreshold(t uint32) Option { return scenario.WithThreshold(t) }

// WithPreseededImages models a deployment with pre-staged images: the base
// image is already replicated on every compute node's local storage, so
// boots and migrations never touch the shared repository. Preseeding also
// makes migrations between disjoint node pairs fully independent — the
// condition WithParallel shards on.
func WithPreseededImages() Option { return scenario.WithPreseededImages() }

// WithParallel runs the scenario on the component-parallel simulation
// kernel: independent fabric components simulate concurrently on their own
// event heaps and the results merge deterministically, equivalent to the
// serial kernel field by field. Scenarios the planner cannot prove
// decomposable (campaigns, CM1, shared-storage strategies, non-preseeded
// images, a saturable fabric) fall back to the serial kernel. workers <= 0
// uses GOMAXPROCS. Without this option runs are serial and bit-for-bit
// reproducible.
func WithParallel(workers int) Option { return scenario.WithParallel(workers) }
