package hybridmig

import (
	"github.com/hybridmig/hybridmig/internal/trace"
)

// Observer receives trace events from a running scenario. Implementations
// must not mutate simulation state; they run synchronously at the instant of
// each event, in virtual-time order.
type Observer = trace.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = trace.ObserverFunc

// Event is one observation from the simulation layers: time-stamped, flat,
// and value-typed.
type Event = trace.Event

// EventKind classifies trace events.
type EventKind = trace.Kind

// The event kinds a scenario publishes. See the trace package constants for
// field semantics.
const (
	// KindMigrationRequested: the middleware accepted a migration request
	// (Detail = approach, Value = destination node ID).
	KindMigrationRequested = trace.KindMigrationRequested
	// KindPhase: a storage-migration phase transition in the manager
	// (Detail = "push", "mirror", "passive", "control-transfer", "released").
	KindPhase = trace.KindPhase
	// KindRound: start of a hypervisor pre-copy round (Round = number,
	// Value = payload bytes).
	KindRound = trace.KindRound
	// KindMigrationCompleted: a migration fully finished (Value = migration
	// time in seconds).
	KindMigrationCompleted = trace.KindMigrationCompleted
	// KindJobQueued, KindJobAdmitted, KindJobFinished: campaign admission
	// lifecycle of one migration job.
	KindJobQueued   = trace.KindJobQueued
	KindJobAdmitted = trace.KindJobAdmitted
	KindJobFinished = trace.KindJobFinished
	// KindCampaignStarted, KindCampaignFinished: campaign brackets
	// (Detail = policy name).
	KindCampaignStarted  = trace.KindCampaignStarted
	KindCampaignFinished = trace.KindCampaignFinished
	// KindSample: periodic degradation sample (Detail = "dirty-bytes",
	// Value = the sampled quantity). Enabled by WithSampleInterval.
	KindSample = trace.KindSample
	// KindFaultInjected: a scripted fault fired (Detail = fault kind, VM =
	// target when the fault addresses one).
	KindFaultInjected = trace.KindFaultInjected
	// KindMigrationAborted: a fault tore an in-flight migration down
	// (Value = wire bytes the aborted attempt wasted).
	KindMigrationAborted = trace.KindMigrationAborted
	// KindMigrationRetried: an aborted migration was re-admitted (Round =
	// the attempt number about to run).
	KindMigrationRetried = trace.KindMigrationRetried
	// KindLinkCapacity: a scheduled link-capacity change took effect
	// (Detail = link name, Value = new capacity in bytes/s).
	KindLinkCapacity = trace.KindLinkCapacity
	// KindLeaseAcquired: a node acquired (or was granted) a shared-volume
	// lease (VM = volume name, Detail = holder node, Value = write epoch).
	KindLeaseAcquired = trace.KindLeaseAcquired
	// KindLeaseRenewed: the reconciler renewed a reachable holder's lease.
	KindLeaseRenewed = trace.KindLeaseRenewed
	// KindLeaseExpired: a holder stayed silent past the lease TTL
	// (Value = the silent age in seconds).
	KindLeaseExpired = trace.KindLeaseExpired
	// KindLeaseFenced: the reconciler fenced a holder silent past TTL+grace;
	// its writes are blocked from this instant on.
	KindLeaseFenced = trace.KindLeaseFenced
	// KindSplitBrain: with fencing disabled, the attachment manager handed
	// write authority to a survivor while the silent holder may still write.
	KindSplitBrain = trace.KindSplitBrain
)
