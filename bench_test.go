// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), one target per artifact, plus ablation benches for the design
// choices DESIGN.md calls out. Each iteration runs the full simulated
// experiment; ReportMetric exposes the quantities the paper plots so `go
// test -bench` output doubles as the reproduction record.
//
// Benchmarks default to the small scale so `go test -bench=.` stays fast;
// set HYBRIDMIG_BENCH_SCALE=paper to run the full Section 5 parameters
// (the numbers recorded in EXPERIMENTS.md come from that mode).
package hybridmig_test

import (
	"os"
	"testing"

	hybridmig "github.com/hybridmig/hybridmig"
	"github.com/hybridmig/hybridmig/internal/cluster"
	"github.com/hybridmig/hybridmig/internal/experiments"
)

// benchScale picks the run size (small by default; paper via env).
func benchScale() experiments.Scale {
	if os.Getenv("HYBRIDMIG_BENCH_SCALE") == "paper" {
		return experiments.ScalePaper
	}
	return experiments.ScaleSmall
}

func BenchmarkTable1Approaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable1()
		if len(rows) != 5 {
			b.Fatal("table 1 must have five approaches")
		}
	}
}

// fig3 caches one full Figure 3 run per scale across the three panel
// benches (the panels come from the same experiment, as in the paper).
var fig3Cache = map[experiments.Scale][]experiments.Fig3Row{}

func fig3Rows(b *testing.B) []experiments.Fig3Row {
	b.Helper()
	s := benchScale()
	if rows, ok := fig3Cache[s]; ok {
		return rows
	}
	rows := experiments.RunFig3(s)
	fig3Cache[s] = rows
	return rows
}

func fig3Metric(b *testing.B, pick func(experiments.Fig3Row) float64, unitSuffix string) {
	b.Helper()
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = fig3Rows(b)
	}
	for _, r := range rows {
		b.ReportMetric(pick(r), string(r.Approach)+"/"+r.Bench+"_"+unitSuffix)
	}
}

func BenchmarkFig3aMigrationTime(b *testing.B) {
	fig3Metric(b, func(r experiments.Fig3Row) float64 { return r.MigrationTime }, "s")
}

func BenchmarkFig3bNetworkTraffic(b *testing.B) {
	fig3Metric(b, func(r experiments.Fig3Row) float64 { return r.TrafficMB }, "MB")
}

func BenchmarkFig3cThroughput(b *testing.B) {
	b.Helper()
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = fig3Rows(b)
	}
	for _, r := range rows {
		if r.Bench == "IOR" {
			b.ReportMetric(r.NormReadPct, string(r.Approach)+"/IOR-Read_pct")
			b.ReportMetric(r.NormWritePct, string(r.Approach)+"/IOR-Write_pct")
		} else {
			b.ReportMetric(r.NormWritePct, string(r.Approach)+"/AsyncWR_pct")
		}
	}
}

var fig4Cache = map[experiments.Scale][]experiments.Fig4Row{}

func fig4Rows(b *testing.B) []experiments.Fig4Row {
	b.Helper()
	s := benchScale()
	if rows, ok := fig4Cache[s]; ok {
		return rows
	}
	rows := experiments.RunFig4(s)
	fig4Cache[s] = rows
	return rows
}

func fig4Metric(b *testing.B, pick func(experiments.Fig4Row) float64, unit string) {
	b.Helper()
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = fig4Rows(b)
	}
	for _, r := range rows {
		b.ReportMetric(pick(r), string(r.Approach)+"/n="+itoa(r.Concurrency)+"_"+unit)
	}
}

func BenchmarkFig4aConcurrentMigrationTime(b *testing.B) {
	fig4Metric(b, func(r experiments.Fig4Row) float64 { return r.AvgMigrationTime }, "s")
}

func BenchmarkFig4bConcurrentTraffic(b *testing.B) {
	fig4Metric(b, func(r experiments.Fig4Row) float64 { return r.TrafficGB }, "GB")
}

func BenchmarkFig4cDegradation(b *testing.B) {
	fig4Metric(b, func(r experiments.Fig4Row) float64 { return r.DegradationPct }, "pct")
}

var fig5Cache = map[experiments.Scale][]experiments.Fig5Row{}

func fig5Rows(b *testing.B) []experiments.Fig5Row {
	b.Helper()
	s := benchScale()
	if rows, ok := fig5Cache[s]; ok {
		return rows
	}
	rows := experiments.RunFig5(s)
	fig5Cache[s] = rows
	return rows
}

func fig5Metric(b *testing.B, pick func(experiments.Fig5Row) float64, unit string) {
	b.Helper()
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = fig5Rows(b)
	}
	for _, r := range rows {
		b.ReportMetric(pick(r), string(r.Approach)+"/m="+itoa(r.Migrations)+"_"+unit)
	}
}

func BenchmarkFig5aCM1MigrationTime(b *testing.B) {
	fig5Metric(b, func(r experiments.Fig5Row) float64 { return r.CumulMigrationTime }, "s")
}

func BenchmarkFig5bCM1Traffic(b *testing.B) {
	fig5Metric(b, func(r experiments.Fig5Row) float64 { return r.TrafficGB }, "GB")
}

func BenchmarkFig5cCM1Slowdown(b *testing.B) {
	fig5Metric(b, func(r experiments.Fig5Row) float64 { return r.RuntimeIncrease }, "s")
}

func ablationMetric(b *testing.B, run func(experiments.Scale) []experiments.AblationRow) {
	b.Helper()
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = run(benchScale())
	}
	for _, r := range rows {
		b.ReportMetric(r.MigrationTime, r.Label+"_s")
		b.ReportMetric(r.TrafficMB, r.Label+"_MB")
	}
}

func BenchmarkAblateThreshold(b *testing.B)    { ablationMetric(b, experiments.AblateThreshold) }
func BenchmarkAblatePullPriority(b *testing.B) { ablationMetric(b, experiments.AblatePullPriority) }
func BenchmarkAblateStripeSize(b *testing.B)   { ablationMetric(b, experiments.AblateStripeSize) }
func BenchmarkAblateBasePrefetch(b *testing.B) { ablationMetric(b, experiments.AblateBasePrefetch) }
func BenchmarkAblateDedup(b *testing.B)        { ablationMetric(b, experiments.AblateDedup) }
func BenchmarkAblateCompression(b *testing.B)  { ablationMetric(b, experiments.AblateCompression) }

// campaignCache keeps one campaign-per-policy run of the orchestrated
// experiment (our approach) so the four policy benches share it.
var campaignCache = map[experiments.Scale][]experiments.CampaignRow{}

func campaignRows(b *testing.B) []experiments.CampaignRow {
	b.Helper()
	s := benchScale()
	if rows, ok := campaignCache[s]; ok {
		return rows
	}
	rows := experiments.RunCampaignApproach(s, cluster.OurApproach)
	campaignCache[s] = rows
	return rows
}

func campaignMetric(b *testing.B, pick func(experiments.CampaignRow) float64, unit string) {
	b.Helper()
	var rows []experiments.CampaignRow
	for i := 0; i < b.N; i++ {
		rows = campaignRows(b)
	}
	for _, r := range rows {
		b.ReportMetric(pick(r), r.Policy+"_"+unit)
	}
}

func BenchmarkCampaignMakespan(b *testing.B) {
	campaignMetric(b, func(r experiments.CampaignRow) float64 { return r.Makespan }, "s")
}

func BenchmarkCampaignDowntime(b *testing.B) {
	campaignMetric(b, func(r experiments.CampaignRow) float64 { return r.TotalDowntimeMS }, "ms")
}

func BenchmarkCampaignTraffic(b *testing.B) {
	campaignMetric(b, func(r experiments.CampaignRow) float64 { return r.TrafficGB }, "GB")
}

// BenchmarkFacadeCampaign exercises the orchestration API end to end: a
// four-VM fleet migrated as one batched campaign through the facade.
func BenchmarkFacadeCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := hybridmig.NewScenario(hybridmig.WithNodes(8))
		steps := make([]hybridmig.Step, 4)
		for k := range steps {
			name := "vm" + itoa(k)
			s.AddVM(hybridmig.VMSpec{Name: name, Node: k, Approach: hybridmig.OurApproach})
			steps[k] = hybridmig.Step{VM: name, Dst: 4 + k}
		}
		s.Campaign(1, hybridmig.BatchedK(2), steps...)
		res, err := s.Run()
		if err != nil || res.Campaigns[0].Jobs != 4 {
			b.Fatal("campaign incomplete")
		}
		b.ReportMetric(res.Campaigns[0].Makespan(), "makespan_s")
	}
}

// BenchmarkFacadeQuickstart exercises the public API end to end: one VM,
// one migration, under the quickstart scenario.
func BenchmarkFacadeQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := hybridmig.NewScenario(hybridmig.WithNodes(4)).
			AddVM(hybridmig.VMSpec{Name: "vm0", Node: 0, Approach: hybridmig.OurApproach}).
			MigrateAt("vm0", 1, 1)
		res, err := s.Run()
		if err != nil || !res.VM("vm0").Migrated {
			b.Fatal("migration incomplete")
		}
	}
}

// itoa avoids strconv for tiny positive ints in metric labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Keep the cluster import referenced for the facade's aliases.
var _ = cluster.OurApproach
